//! The persistent cache tier: an mmap-backed append-only segment.
//!
//! PR 5 persisted results as one file per key, which costs a
//! create/write/fsync/rename per insert and a directory scan to warm
//! up. This module replaces it with a single append-only segment file:
//!
//! * **records** are `[magic, key, len, payload-hash, payload]`,
//!   appended and fsynced before the in-memory index publishes them —
//!   a crash can only ever produce a torn *tail*, never a torn middle;
//! * **reads** go through an `mmap` of the file (raw FFI against the
//!   already-linked C library; a plain `pread` fallback keeps non-unix
//!   builds working), so N daemon processes sharing one segment share
//!   one page-cache copy of the warm state;
//! * the **index** (key → offset) is rebuilt by a forward scan at open.
//!   The scan is corrupt-tolerant: the first record whose magic, bounds
//!   or payload hash fails validation marks the logical end of file —
//!   a writable open truncates the torn tail away, a read-only open
//!   just ignores it;
//! * **sharing**: a read-only segment can [`refresh`] against a file
//!   another daemon process is appending to — it remaps and scans only
//!   the new suffix. Writers are single-process (the serve daemon
//!   shards by architecture content-hash precisely so that each key
//!   range has one writer; see DESIGN.md §13).
//!
//! Values are opaque UTF-8 (rendered result JSON); a record whose
//! payload fails hash or UTF-8 validation reads as a miss, never an
//! error.
//!
//! [`refresh`]: SegmentStore::refresh

use cgra_dfg::ContentHasher;
use std::collections::HashMap;
use std::fs::{File, OpenOptions};
use std::io::{Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Segment file header: magic + format version, 16 bytes.
const HEADER: &[u8; 16] = b"cgra-seg\x01\x00\x00\x00\x00\x00\x00\x00";

/// Per-record magic, guarding the scan against torn appends.
const RECORD_MAGIC: u32 = 0x5345_4752; // "RGES"

/// Record header bytes: magic u32 + key u64 + len u32 + hash u64.
const RECORD_HEADER: usize = 4 + 8 + 4 + 8;

/// Records larger than this are rejected at append and treated as
/// corruption by the scan (a length field this big is a torn write).
const MAX_PAYLOAD: usize = 256 << 20;

fn payload_hash(bytes: &[u8]) -> u64 {
    let mut h = ContentHasher::new("cgra-serve-segment");
    h.write_bytes(bytes);
    h.finish()
}

// ---------------------------------------------------------------------
// Read view: mmap on unix, buffered pread elsewhere
// ---------------------------------------------------------------------

#[cfg(unix)]
mod view {
    use std::fs::File;
    use std::io;
    use std::os::unix::io::AsRawFd;

    const PROT_READ: i32 = 0x1;
    const MAP_SHARED: i32 = 0x01;

    extern "C" {
        fn mmap(addr: *mut u8, len: usize, prot: i32, flags: i32, fd: i32, offset: i64) -> *mut u8;
        fn munmap(addr: *mut u8, len: usize) -> i32;
    }

    /// A read-only `MAP_SHARED` view of a file prefix. Pages are shared
    /// with every other process mapping the same segment.
    pub struct View {
        ptr: *mut u8,
        len: usize,
    }

    // SAFETY: the mapping is read-only and owned until Drop; raw
    // pointers are only dereferenced through `bytes`.
    unsafe impl Send for View {}

    impl std::fmt::Debug for View {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.debug_struct("View").field("len", &self.len).finish()
        }
    }

    impl View {
        /// Maps the first `len` bytes of `file` (len > 0).
        pub fn map(file: &File, len: usize) -> io::Result<View> {
            // SAFETY: length is positive and within the file (callers
            // pass a stat'd size); the fd stays open for the call.
            let ptr = unsafe {
                mmap(
                    std::ptr::null_mut(),
                    len,
                    PROT_READ,
                    MAP_SHARED,
                    file.as_raw_fd(),
                    0,
                )
            };
            if ptr as isize == -1 {
                return Err(io::Error::last_os_error());
            }
            Ok(View { ptr, len })
        }

        /// The mapped bytes.
        pub fn bytes(&self) -> &[u8] {
            // SAFETY: ptr/len come from a successful mmap.
            unsafe { std::slice::from_raw_parts(self.ptr, self.len) }
        }
    }

    impl Drop for View {
        fn drop(&mut self) {
            // SAFETY: exactly the region mapped above.
            unsafe { munmap(self.ptr, self.len) };
        }
    }
}

#[cfg(not(unix))]
mod view {
    use std::fs::File;
    use std::io::{self, Read, Seek, SeekFrom};

    /// Portable fallback: the file prefix is read into memory once per
    /// (re)map. Loses cross-process page sharing, keeps the format.
    #[derive(Debug)]
    pub struct View {
        buf: Vec<u8>,
    }

    impl View {
        pub fn map(file: &File, len: usize) -> io::Result<View> {
            let mut f = file.try_clone()?;
            f.seek(SeekFrom::Start(0))?;
            let mut buf = vec![0u8; len];
            f.read_exact(&mut buf)?;
            Ok(View { buf })
        }

        pub fn bytes(&self) -> &[u8] {
            &self.buf
        }
    }
}

// ---------------------------------------------------------------------
// The store
// ---------------------------------------------------------------------

/// Counters a [`SegmentStore`] accumulates (surfaced via the service's
/// `stats` command and the bench report).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SegmentStats {
    /// Records indexed (live keys; duplicates keep the newest).
    pub entries: usize,
    /// Bytes in the segment file up to the last valid record.
    pub bytes: u64,
    /// Records dropped by corrupt-tolerant scans (torn tails).
    pub torn_records: u64,
}

struct Slot {
    offset: u64,
    len: u32,
    hash: u64,
}

/// An append-only, mmap-read, crash-tolerant key→bytes store.
///
/// See the module docs for the format and sharing model.
pub struct SegmentStore {
    path: PathBuf,
    file: File,
    writable: bool,
    index: HashMap<u64, Slot>,
    /// Bytes covered by the index scan (== logical end of file).
    scanned: u64,
    view: Option<view::View>,
    torn: u64,
}

impl std::fmt::Debug for SegmentStore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SegmentStore")
            .field("path", &self.path)
            .field("writable", &self.writable)
            .field("entries", &self.index.len())
            .field("scanned", &self.scanned)
            .finish()
    }
}

impl SegmentStore {
    /// Opens (creating if `writable` and absent) the segment at `path`.
    ///
    /// The open scans the whole file to rebuild the index, stopping at
    /// the first torn/corrupt record; with `writable` the torn tail is
    /// truncated away so later appends extend a clean file.
    pub fn open(path: &Path, writable: bool) -> std::io::Result<SegmentStore> {
        let file = if writable {
            if let Some(dir) = path.parent() {
                std::fs::create_dir_all(dir)?;
            }
            // Existing contents are scanned and kept (modulo a torn
            // tail) — never truncated wholesale.
            OpenOptions::new()
                .read(true)
                .write(true)
                .create(true)
                .truncate(false)
                .open(path)?
        } else {
            OpenOptions::new().read(true).open(path)?
        };
        let mut store = SegmentStore {
            path: path.to_owned(),
            file,
            writable,
            index: HashMap::new(),
            scanned: 0,
            view: None,
            torn: 0,
        };
        let len = store.file.metadata()?.len();
        if len < HEADER.len() as u64 {
            if !writable {
                return Err(std::io::Error::new(
                    std::io::ErrorKind::InvalidData,
                    "segment file has no header",
                ));
            }
            // Fresh (or torn-at-birth) file: write the header and make
            // it durable — including the directory entry, so the
            // segment survives a crash right after creation.
            store.file.set_len(0)?;
            store.file.seek(SeekFrom::Start(0))?;
            store.file.write_all(HEADER)?;
            store.file.sync_all()?;
            sync_parent_dir(path);
            store.scanned = HEADER.len() as u64;
            return Ok(store);
        }
        store.remap(len)?;
        let valid_header = store
            .view
            .as_ref()
            .is_some_and(|v| v.bytes()[..HEADER.len()] == HEADER[..]);
        if !valid_header {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidData,
                format!("{} is not a cgra-serve segment", path.display()),
            ));
        }
        store.scanned = HEADER.len() as u64;
        store.scan_forward(len);
        if writable && store.scanned < len {
            // Torn tail from a crashed append: cut it off.
            store.file.set_len(store.scanned)?;
            store.file.sync_all()?;
        }
        Ok(store)
    }

    /// Re-maps the read view to cover `len` bytes of the file.
    fn remap(&mut self, len: u64) -> std::io::Result<()> {
        if len == 0 {
            self.view = None;
            return Ok(());
        }
        self.view = Some(view::View::map(&self.file, len as usize)?);
        Ok(())
    }

    fn mapped_len(&self) -> u64 {
        self.view.as_ref().map_or(0, |v| v.bytes().len() as u64)
    }

    /// Scans records in `[self.scanned, file_len)` into the index,
    /// stopping (and recording a torn tail) at the first invalid record.
    fn scan_forward(&mut self, file_len: u64) {
        let Some(view) = &self.view else { return };
        let bytes = view.bytes();
        let end = (file_len.min(bytes.len() as u64)) as usize;
        let mut at = self.scanned as usize;
        let mut invalid = false;
        while at + RECORD_HEADER <= end {
            let magic = u32::from_le_bytes(bytes[at..at + 4].try_into().unwrap());
            if magic != RECORD_MAGIC {
                invalid = true;
                break;
            }
            let key = u64::from_le_bytes(bytes[at + 4..at + 12].try_into().unwrap());
            let len = u32::from_le_bytes(bytes[at + 12..at + 16].try_into().unwrap()) as usize;
            let hash = u64::from_le_bytes(bytes[at + 16..at + 24].try_into().unwrap());
            let payload_at = at + RECORD_HEADER;
            if len > MAX_PAYLOAD || payload_at + len > end {
                invalid = true;
                break;
            }
            let payload = &bytes[payload_at..payload_at + len];
            if payload_hash(payload) != hash {
                invalid = true;
                break;
            }
            self.index.insert(
                key,
                Slot {
                    offset: payload_at as u64,
                    len: len as u32,
                    hash,
                },
            );
            at = payload_at + len;
        }
        // A bad record, or trailing bytes too short to even hold a
        // record header, are one torn region ending the scan.
        if invalid || at < end {
            self.torn += 1;
        }
        self.scanned = at as u64;
    }

    /// Appends `text` under `key`. The record is written and fsynced
    /// before the index publishes it; on any I/O failure the index is
    /// untouched and the (possibly torn) bytes will be truncated by the
    /// next writable open.
    pub fn append(&mut self, key: u64, text: &str) -> std::io::Result<()> {
        if !self.writable {
            return Err(std::io::Error::new(
                std::io::ErrorKind::PermissionDenied,
                "segment opened read-only",
            ));
        }
        let payload = text.as_bytes();
        if payload.len() > MAX_PAYLOAD {
            return Err(std::io::Error::new(
                std::io::ErrorKind::InvalidInput,
                "payload exceeds segment record limit",
            ));
        }
        let hash = payload_hash(payload);
        let mut record = Vec::with_capacity(RECORD_HEADER + payload.len());
        record.extend_from_slice(&RECORD_MAGIC.to_le_bytes());
        record.extend_from_slice(&key.to_le_bytes());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&hash.to_le_bytes());
        record.extend_from_slice(payload);

        let offset = self.file.seek(SeekFrom::Start(self.scanned))?;
        if crate::fault::tear_this_append() {
            // Chaos hook: simulate a crash mid-record — a durable torn
            // prefix reaches the disk, the index never publishes, and
            // `scanned` does not advance, exactly like a writer killed
            // between `write_all` and the index insert. Readers must
            // see only whole records; a writable re-open truncates.
            let keep = if payload.is_empty() {
                RECORD_HEADER / 2
            } else {
                RECORD_HEADER + payload.len() / 2
            };
            self.file.write_all(&record[..keep])?;
            self.file.sync_data()?;
            return Err(std::io::Error::other("fault-inject: torn append"));
        }
        self.file.write_all(&record)?;
        self.file.sync_data()?;
        self.index.insert(
            key,
            Slot {
                offset: offset + RECORD_HEADER as u64,
                len: payload.len() as u32,
                hash,
            },
        );
        self.scanned = offset + record.len() as u64;
        Ok(())
    }

    /// Looks up `key`, remapping lazily if the record lies beyond the
    /// current view (it was appended after the last map). Hash or UTF-8
    /// failures read as a miss.
    pub fn get(&mut self, key: u64) -> Option<String> {
        let slot = self.index.get(&key)?;
        let end = slot.offset + slot.len as u64;
        let (offset, len, hash) = (slot.offset, slot.len as usize, slot.hash);
        if end > self.mapped_len() && self.remap(self.scanned).is_err() {
            return None;
        }
        let bytes = self.view.as_ref()?.bytes();
        if end as usize > bytes.len() {
            return None;
        }
        let payload = &bytes[offset as usize..offset as usize + len];
        if payload_hash(payload) != hash {
            return None;
        }
        String::from_utf8(payload.to_vec()).ok()
    }

    /// Picks up records another process appended since open (or the
    /// last refresh): remaps and scans only the new suffix. Returns the
    /// number of records added. Cheap when nothing changed (one stat).
    pub fn refresh(&mut self) -> std::io::Result<usize> {
        let len = self.file.metadata()?.len();
        if len <= self.scanned {
            return Ok(0);
        }
        let before = self.index.len();
        self.remap(len)?;
        self.scan_forward(len);
        Ok(self.index.len() - before)
    }

    /// Current store counters.
    pub fn stats(&self) -> SegmentStats {
        SegmentStats {
            entries: self.index.len(),
            bytes: self.scanned,
            torn_records: self.torn,
        }
    }

    /// The segment file path.
    pub fn path(&self) -> &Path {
        &self.path
    }
}

/// Makes a just-created file's directory entry durable. Best-effort:
/// directories cannot be fsynced on every platform, and a failure only
/// re-opens the crash window the fsync was closing.
fn sync_parent_dir(path: &Path) {
    #[cfg(unix)]
    if let Some(dir) = path.parent() {
        if let Ok(d) = File::open(dir) {
            let _ = d.sync_all();
        }
    }
    #[cfg(not(unix))]
    let _ = path;
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_seg(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("cgra-segment-{}-{}", std::process::id(), tag));
        let _ = std::fs::remove_dir_all(&dir);
        dir.join("cache.seg")
    }

    #[test]
    fn roundtrip_and_reopen() {
        let path = temp_seg("roundtrip");
        {
            let mut seg = SegmentStore::open(&path, true).unwrap();
            seg.append(1, "{\"a\":1}").unwrap();
            seg.append(2, "{\"b\":2}").unwrap();
            assert_eq!(seg.get(1).as_deref(), Some("{\"a\":1}"));
            // Overwrite: newest record wins.
            seg.append(1, "{\"a\":9}").unwrap();
            assert_eq!(seg.get(1).as_deref(), Some("{\"a\":9}"));
        }
        let mut seg = SegmentStore::open(&path, true).unwrap();
        assert_eq!(seg.stats().entries, 2);
        assert_eq!(seg.get(1).as_deref(), Some("{\"a\":9}"));
        assert_eq!(seg.get(2).as_deref(), Some("{\"b\":2}"));
        assert_eq!(seg.get(3), None);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn torn_tail_is_truncated_not_fatal() {
        let path = temp_seg("torn");
        {
            let mut seg = SegmentStore::open(&path, true).unwrap();
            seg.append(10, "first").unwrap();
            seg.append(11, "second").unwrap();
        }
        // Simulate a crash mid-append: chop bytes off the last record.
        let len = std::fs::metadata(&path).unwrap().len();
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 3).unwrap();
        drop(f);

        let mut seg = SegmentStore::open(&path, true).unwrap();
        assert_eq!(seg.get(10).as_deref(), Some("first"));
        assert_eq!(seg.get(11), None, "torn record must not replay");
        assert_eq!(seg.stats().torn_records, 1);
        // The truncated store accepts fresh appends cleanly.
        seg.append(12, "third").unwrap();
        drop(seg);
        let mut seg = SegmentStore::open(&path, true).unwrap();
        assert_eq!(seg.get(12).as_deref(), Some("third"));
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn garbage_in_the_middle_stops_the_scan_cleanly() {
        let path = temp_seg("garbage");
        {
            let mut seg = SegmentStore::open(&path, true).unwrap();
            seg.append(20, "keep me").unwrap();
        }
        // Append raw garbage (no valid record magic) after the records.
        let mut f = OpenOptions::new().append(true).open(&path).unwrap();
        f.write_all(b"\xde\xad\xbe\xef not a record").unwrap();
        drop(f);
        let mut seg = SegmentStore::open(&path, true).unwrap();
        assert_eq!(seg.get(20).as_deref(), Some("keep me"));
        assert_eq!(seg.stats().torn_records, 1);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn read_only_sharer_sees_appends_after_refresh() {
        let path = temp_seg("share");
        let mut writer = SegmentStore::open(&path, true).unwrap();
        writer.append(30, "early").unwrap();

        let mut reader = SegmentStore::open(&path, false).unwrap();
        assert_eq!(reader.get(30).as_deref(), Some("early"));
        assert_eq!(reader.get(31), None);
        assert!(reader.append(99, "nope").is_err());

        writer.append(31, "late").unwrap();
        assert_eq!(reader.refresh().unwrap(), 1);
        assert_eq!(reader.get(31).as_deref(), Some("late"));
        // No growth: refresh is a no-op.
        assert_eq!(reader.refresh().unwrap(), 0);
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    /// The ISSUE 9 torn-tail scenario end to end: a writer "killed"
    /// mid-record (via the fault-injection tear hook) leaves a durable
    /// partial record; a reader `refresh()`ing concurrently must see
    /// only whole records, and after the writer restarts (truncating
    /// the tail) the same reader converges on the clean replacement.
    #[cfg(feature = "fault-inject")]
    #[test]
    fn reader_refresh_never_sees_torn_records_from_killed_writer() {
        use crate::fault::{install, FaultPlan};
        let path = temp_seg("fault-torn");
        let mut writer = SegmentStore::open(&path, true).unwrap();
        writer.append(40, "before").unwrap();
        let mut reader = SegmentStore::open(&path, false).unwrap();
        assert_eq!(reader.get(40).as_deref(), Some("before"));

        let guard = install(FaultPlan {
            panic_solves: vec![],
            tear_appends: vec![0],
            drop_forwards: vec![],
        });
        // The kill: the first append tears mid-record and the writer
        // stops being used, as if SIGKILLed between write and publish.
        assert!(writer.append(41, "torn victim").is_err());
        drop(writer);
        drop(guard);

        // The concurrent reader refreshes against the torn tail: zero
        // new records, the torn key reads as a miss, old keys survive.
        assert_eq!(reader.refresh().unwrap(), 0);
        assert_eq!(reader.get(41), None, "torn record must not surface");
        assert_eq!(reader.get(40).as_deref(), Some("before"));
        assert_eq!(reader.stats().torn_records, 1);

        // Writer restart truncates the tail and retries the append;
        // the same reader picks up exactly the whole replacement.
        let mut writer = SegmentStore::open(&path, true).unwrap();
        writer.append(41, "after restart").unwrap();
        assert_eq!(reader.refresh().unwrap(), 1);
        assert_eq!(reader.get(41).as_deref(), Some("after restart"));
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }

    #[test]
    fn non_segment_file_is_rejected() {
        let path = temp_seg("reject");
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, b"just some text, long enough to have a header").unwrap();
        assert!(SegmentStore::open(&path, true).is_err());
        assert!(SegmentStore::open(&path, false).is_err());
        let _ = std::fs::remove_dir_all(path.parent().unwrap());
    }
}
