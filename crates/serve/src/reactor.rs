//! The event-driven TCP front-end: one reactor thread, many sockets.
//!
//! The original transport gave every connection its own thread and
//! polled with sleeps (a 10ms accept poll, a 100ms read timeout). That
//! model burns a thread per idle client and puts two sleep loops on the
//! hot path; at fleet scale — thousands of mostly-idle design-space
//! exploration clients — it is the bottleneck long before the solver
//! is. This module replaces it with a reactor:
//!
//! * one thread owns a [`cgra_par::reactor::Poller`] (epoll on Linux)
//!   with the listener, a waker, and every connection registered
//!   level-triggered;
//! * reads are nonblocking; NDJSON frames are reassembled across
//!   arbitrary TCP segment boundaries (a frame may arrive one byte at a
//!   time, or many frames in one segment) and dispatched through
//!   [`Service::handle_async`];
//! * responses come back on a completion queue from worker threads (or
//!   inline, for cache hits served at submission) and are flushed with
//!   backpressure: a connection whose client stops reading accumulates
//!   up to a high watermark, then has its *read* interest paused — a
//!   slow consumer throttles itself, not the daemon;
//! * connection slots carry generation counters, so a response that
//!   completes after its connection died (and the slot was reused) is
//!   dropped instead of being written into another client's stream;
//! * shutdown is event-driven too: [`Service::on_shutdown`] wakes the
//!   poller, the listener closes, and the loop exits once every
//!   connection has drained its final bytes.
//!
//! On platforms without readiness polling the server falls back to the
//! threaded transport in [`crate::server`].

#[cfg(unix)]
pub use imp::serve;

#[cfg(unix)]
mod imp {
    use crate::service::{ReactorStats, Service};
    use crate::wire::{self, ErrorKind, WireError};
    use cgra_par::reactor::{Event, Interest, Poller};
    use std::collections::{BTreeMap, VecDeque};
    use std::io::{Read, Write};
    use std::net::{TcpListener, TcpStream};
    use std::os::unix::io::AsRawFd;
    use std::os::unix::net::UnixStream;
    use std::sync::atomic::Ordering;
    use std::sync::{Arc, Mutex, MutexGuard};
    use std::time::Duration;

    const TOKEN_LISTENER: u64 = 0;
    const TOKEN_WAKER: u64 = 1;
    /// Hard cap on one request frame; a line that exceeds it gets a
    /// typed error and the connection is drained no further.
    const MAX_FRAME: usize = 32 << 20;
    /// Pause reading a connection once this many response bytes are
    /// queued toward a client that is not consuming them...
    const HIGH_WATER: usize = 1 << 20;
    /// ...and resume once the backlog drains below this.
    const LOW_WATER: usize = 64 << 10;
    /// Defensive heartbeat: the loop re-checks state at least this
    /// often even if a wakeup is somehow lost.
    const HEARTBEAT: Duration = Duration::from_millis(500);

    fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
        m.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// A finished response addressed to a connection token. `seq` is
    /// the frame's dispatch number on its connection: responses are
    /// delivered in request order per connection (a pipelining client
    /// may correlate by position, not just by id), so an out-of-order
    /// completion parks in the connection's reorder buffer.
    struct Completion {
        token: u64,
        seq: u64,
        response: String,
    }

    /// State shared with worker threads: the completion queue and the
    /// waker that interrupts [`Poller::wait`].
    struct Shared {
        queue: Mutex<Vec<Completion>>,
        waker: Mutex<UnixStream>,
    }

    impl Shared {
        fn push(&self, token: u64, seq: u64, response: String) {
            lock(&self.queue).push(Completion {
                token,
                seq,
                response,
            });
            self.wake();
        }

        fn wake(&self) {
            // Nonblocking: a full pipe already guarantees a pending
            // wakeup, so WouldBlock is success.
            let _ = lock(&self.waker).write(&[1]);
        }
    }

    struct Conn {
        stream: TcpStream,
        gen: u64,
        inbuf: Vec<u8>,
        outbuf: VecDeque<u8>,
        /// Requests dispatched whose responses have not yet reached
        /// `outbuf`. The connection must outlive them.
        outstanding: usize,
        /// Dispatch sequence of the next frame read off this connection.
        next_dispatch: u64,
        /// Sequence of the next response owed to the client...
        next_deliver: u64,
        /// ...and completions that finished ahead of it.
        reorder: BTreeMap<u64, String>,
        read_closed: bool,
        paused: bool,
        interest: Interest,
        /// The frame cap tripped: everything further from this client
        /// is discarded.
        poisoned: bool,
    }

    impl Conn {
        /// Queues a completed response, flushing it (and any parked
        /// successors) to the outbox once it is the next one owed.
        fn complete(&mut self, seq: u64, response: String) {
            self.outstanding = self.outstanding.saturating_sub(1);
            self.reorder.insert(seq, response);
            while let Some(response) = self.reorder.remove(&self.next_deliver) {
                self.outbuf.extend(response.as_bytes());
                self.outbuf.push_back(b'\n');
                self.next_deliver += 1;
            }
        }
    }

    fn token_of(slot: usize, gen: u64) -> u64 {
        ((slot as u64 + 1) << 32) | (gen & 0xffff_ffff)
    }

    fn slot_of(token: u64) -> Option<(usize, u64)> {
        if token < (1 << 32) {
            return None;
        }
        Some(((token >> 32) as usize - 1, token & 0xffff_ffff))
    }

    /// Runs the reactor until the service shuts down and every
    /// connection has drained. `listener` must be nonblocking.
    pub fn serve(service: Arc<Service>, listener: TcpListener) {
        let mut poller = match Poller::new() {
            Ok(p) => p,
            Err(e) => {
                eprintln!("cgra-serve: readiness polling unavailable ({e}); using threads");
                crate::server::accept_loop(&service, &listener);
                return;
            }
        };
        let (mut waker_rx, waker_tx) = match UnixStream::pair() {
            Ok(pair) => pair,
            Err(e) => {
                eprintln!("cgra-serve: cannot create waker ({e}); using threads");
                crate::server::accept_loop(&service, &listener);
                return;
            }
        };
        let _ = waker_rx.set_nonblocking(true);
        let _ = waker_tx.set_nonblocking(true);
        let shared = Arc::new(Shared {
            queue: Mutex::new(Vec::new()),
            waker: Mutex::new(waker_tx),
        });
        {
            // A `shutdown` request arriving on any connection (or an
            // in-process initiate_shutdown) must interrupt the wait.
            let shared = Arc::clone(&shared);
            service.on_shutdown(move || shared.wake());
        }
        let stats = service.reactor_stats();
        if poller
            .register(listener.as_raw_fd(), TOKEN_LISTENER, Interest::READ)
            .and_then(|()| poller.register(waker_rx.as_raw_fd(), TOKEN_WAKER, Interest::READ))
            .is_err()
        {
            eprintln!("cgra-serve: poller registration failed; using threads");
            crate::server::accept_loop(&service, &listener);
            return;
        }

        let mut conns: Vec<Option<Conn>> = Vec::new();
        let mut free: Vec<usize> = Vec::new();
        let mut next_gen: u64 = 0;
        let mut events: Vec<Event> = Vec::new();
        let mut dirty: Vec<usize> = Vec::new();
        let mut listening = true;

        loop {
            if poller.wait(&mut events, Some(HEARTBEAT)).is_err() {
                // An unrecoverable poller failure: fail every client
                // rather than spin.
                break;
            }
            dirty.clear();
            let shutting_down = service.is_shutting_down();

            for ev in &events {
                let ev = *ev;
                match ev.token {
                    TOKEN_LISTENER => {
                        if listening && !shutting_down {
                            accept_all(
                                &listener,
                                &mut poller,
                                &mut conns,
                                &mut free,
                                &mut next_gen,
                                &stats,
                            );
                        }
                    }
                    TOKEN_WAKER => {
                        let mut sink = [0u8; 256];
                        while matches!(waker_rx.read(&mut sink), Ok(n) if n > 0) {}
                    }
                    token => {
                        if let Some((slot, gen)) = slot_of(token) {
                            let alive = matches!(
                                conns.get(slot),
                                Some(Some(c)) if c.gen == gen
                            );
                            if alive {
                                if ev.readable || ev.hangup {
                                    read_conn(&service, &shared, &mut conns, slot, &stats);
                                }
                                dirty.push(slot);
                            }
                        }
                    }
                }
            }

            // Deliver finished responses (from workers, or queued
            // inline during the reads above).
            let completed: Vec<Completion> = std::mem::take(&mut *lock(&shared.queue));
            for c in completed {
                if let Some((slot, gen)) = slot_of(c.token) {
                    if let Some(Some(conn)) = conns.get_mut(slot) {
                        if conn.gen == gen {
                            conn.complete(c.seq, c.response);
                            dirty.push(slot);
                        } else {
                            // A stale generation means the original
                            // client vanished and the slot was reused:
                            // dropping the response is the only correct
                            // delivery. Counted so the chaos suites can
                            // assert no response crossed connections.
                            stats.stale_completions.fetch_add(1, Ordering::Relaxed);
                        }
                    } else {
                        stats.stale_completions.fetch_add(1, Ordering::Relaxed);
                    }
                }
            }

            if shutting_down {
                if listening {
                    let _ = poller.deregister(listener.as_raw_fd());
                    listening = false;
                }
                // Every connection gets a drain-and-close pass.
                dirty.extend(0..conns.len());
            }

            dirty.sort_unstable();
            dirty.dedup();
            for &slot in &dirty {
                pump_conn(
                    &mut poller,
                    &mut conns,
                    &mut free,
                    slot,
                    shutting_down,
                    &stats,
                );
            }

            if shutting_down && conns.iter().all(Option::is_none) {
                break;
            }
        }
    }

    fn accept_all(
        listener: &TcpListener,
        poller: &mut Poller,
        conns: &mut Vec<Option<Conn>>,
        free: &mut Vec<usize>,
        next_gen: &mut u64,
        stats: &ReactorStats,
    ) {
        loop {
            match listener.accept() {
                Ok((stream, _)) => {
                    if stream.set_nonblocking(true).is_err() {
                        continue;
                    }
                    let _ = stream.set_nodelay(true);
                    let slot = free.pop().unwrap_or_else(|| {
                        conns.push(None);
                        conns.len() - 1
                    });
                    *next_gen = next_gen.wrapping_add(1);
                    let gen = *next_gen & 0xffff_ffff;
                    let token = token_of(slot, gen);
                    if poller
                        .register(stream.as_raw_fd(), token, Interest::READ)
                        .is_err()
                    {
                        free.push(slot);
                        continue;
                    }
                    conns[slot] = Some(Conn {
                        stream,
                        gen,
                        inbuf: Vec::new(),
                        outbuf: VecDeque::new(),
                        outstanding: 0,
                        next_dispatch: 0,
                        next_deliver: 0,
                        reorder: BTreeMap::new(),
                        read_closed: false,
                        paused: false,
                        interest: Interest::READ,
                        poisoned: false,
                    });
                    stats.connections_accepted.fetch_add(1, Ordering::Relaxed);
                    stats.connections_open.fetch_add(1, Ordering::Relaxed);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(e) => {
                    eprintln!("cgra-serve: accept failed: {e}");
                    break;
                }
            }
        }
    }

    /// Drains readable bytes, reassembles complete NDJSON frames, and
    /// dispatches them. Partial frames stay buffered for the next
    /// readiness event — a request split across any number of TCP
    /// segments reassembles byte-exactly.
    fn read_conn(
        service: &Arc<Service>,
        shared: &Arc<Shared>,
        conns: &mut [Option<Conn>],
        slot: usize,
        stats: &ReactorStats,
    ) {
        let Some(conn) = conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        let token = token_of(slot, conn.gen);
        let mut chunk = [0u8; 64 << 10];
        loop {
            match conn.stream.read(&mut chunk) {
                Ok(0) => {
                    conn.read_closed = true;
                    break;
                }
                Ok(n) => {
                    if conn.poisoned {
                        continue; // discard: the client blew the frame cap
                    }
                    conn.inbuf.extend_from_slice(&chunk[..n]);
                    dispatch_frames(service, shared, conn, token, stats);
                    if conn.inbuf.len() > MAX_FRAME {
                        conn.poisoned = true;
                        conn.inbuf = Vec::new();
                        let err = wire::error_response(
                            None,
                            &WireError::new(
                                ErrorKind::Request,
                                format!("request frame exceeds {MAX_FRAME} bytes"),
                            ),
                        );
                        // Route through the sequencer so the error lands
                        // after every response already owed.
                        conn.outstanding += 1;
                        let seq = conn.next_dispatch;
                        conn.next_dispatch += 1;
                        conn.complete(seq, err);
                        conn.read_closed = true;
                        break;
                    }
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    conn.read_closed = true;
                    break;
                }
            }
        }
    }

    fn dispatch_frames(
        service: &Arc<Service>,
        shared: &Arc<Shared>,
        conn: &mut Conn,
        token: u64,
        stats: &ReactorStats,
    ) {
        while let Some(pos) = conn.inbuf.iter().position(|&b| b == b'\n') {
            let frame: Vec<u8> = conn.inbuf.drain(..=pos).collect();
            stats.frames.fetch_add(1, Ordering::Relaxed);
            let line = String::from_utf8_lossy(&frame);
            let line = line.trim();
            if line.is_empty() {
                continue;
            }
            conn.outstanding += 1;
            let seq = conn.next_dispatch;
            conn.next_dispatch += 1;
            let shared = Arc::clone(shared);
            service.handle_async(
                line,
                Box::new(move |response| shared.push(token, seq, response)),
            );
        }
    }

    /// Flushes queued bytes, recomputes interest (backpressure pause /
    /// resume, write interest while the outbox is non-empty), and
    /// closes the connection once it is finished: read side closed or
    /// shutdown, nothing outstanding, outbox empty.
    fn pump_conn(
        poller: &mut Poller,
        conns: &mut [Option<Conn>],
        free: &mut Vec<usize>,
        slot: usize,
        shutting_down: bool,
        stats: &ReactorStats,
    ) {
        let Some(conn) = conns.get_mut(slot).and_then(Option::as_mut) else {
            return;
        };
        let mut dead = false;
        while !conn.outbuf.is_empty() {
            let (front, _) = conn.outbuf.as_slices();
            match conn.stream.write(front) {
                Ok(0) => {
                    dead = true;
                    break;
                }
                Ok(n) => {
                    conn.outbuf.drain(..n);
                }
                Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => break,
                Err(e) if e.kind() == std::io::ErrorKind::Interrupted => continue,
                Err(_) => {
                    dead = true;
                    break;
                }
            }
        }

        let drained = conn.outbuf.is_empty();
        let finished = drained && conn.outstanding == 0 && (conn.read_closed || shutting_down);
        if dead || finished {
            let _ = poller.deregister(conn.stream.as_raw_fd());
            conns[slot] = None;
            free.push(slot);
            stats.connections_open.fetch_sub(1, Ordering::Relaxed);
            return;
        }

        if !conn.paused && conn.outbuf.len() >= HIGH_WATER {
            conn.paused = true;
            stats.backpressure_events.fetch_add(1, Ordering::Relaxed);
        } else if conn.paused && conn.outbuf.len() <= LOW_WATER {
            conn.paused = false;
        }
        let want = Interest {
            read: !conn.paused && !conn.read_closed,
            write: !drained,
        };
        if want != conn.interest {
            let token = token_of(slot, conn.gen);
            if poller.modify(conn.stream.as_raw_fd(), token, want).is_ok() {
                conn.interest = want;
            }
        }
    }
}
