//! End-to-end smoke for the fleet front end using *external* processes:
//! the shipped `cgra-serve` and `cgra-router` binaries wired over real
//! TCP, with one shard SIGKILLed mid-run and restarted on its port.
//!
//! The in-process chaos suites (`router_chaos.rs`, behind the
//! `fault-inject` feature) cover the seeded fault plans; this suite
//! proves the binaries themselves survive the same story — responses
//! are byte-identical to the primed baseline or *typed* errors, a hard
//! kill never produces junk, and the router re-admits the revived
//! shard via its half-open probe. Runs under plain `cargo test`
//! (cargo builds the crate's bins for integration tests and exposes
//! them via `CARGO_BIN_EXE_*`).

use cgra_arch::families::paper_configs;
use cgra_serve::client::Client;
use cgra_serve::json::{obj, s, Json};
use cgra_serve::ErrorKind;
use std::io::BufRead;
use std::process::{Child, Command, Stdio};
use std::time::{Duration, Instant};

const SHARDS: u32 = 2;

struct Cell {
    dfg_text: String,
    arch_text: String,
    owner: usize,
}

fn build_cells() -> Vec<Cell> {
    let accum = cgra_dfg::text::print(&cgra_dfg::benchmarks::accum());
    let cells: Vec<Cell> = paper_configs()
        .iter()
        .filter(|c| c.contexts == 1)
        .map(|config| Cell {
            dfg_text: accum.clone(),
            arch_text: cgra_arch::text::print(&config.arch),
            owner: (config.arch.content_hash() % SHARDS as u64) as usize,
        })
        .collect();
    assert!(
        cells.iter().any(|c| c.owner == 0) && cells.iter().any(|c| c.owner == 1),
        "paper configs must span both shards"
    );
    cells
}

fn map_line(id: &str, cell: &Cell) -> String {
    obj(vec![
        ("id", s(id)),
        ("cmd", s("map")),
        ("dfg", s(cell.dfg_text.clone())),
        ("arch", s(cell.arch_text.clone())),
        ("ii", Json::Int(1)),
        (
            "options",
            obj(vec![
                ("time_limit_us", Json::Int(30_000_000)),
                ("threads", Json::Int(1)),
            ]),
        ),
    ])
    .to_string()
}

/// A spawned daemon process plus the address it reported on stderr.
struct Daemon {
    child: Child,
    addr: String,
}

/// Reads the child's stderr until the `listening on …` line, then keeps
/// draining it on a background thread so the process never blocks on a
/// full pipe.
fn wait_listening(child: &mut Child, what: &str) -> String {
    let stderr = child.stderr.take().expect("stderr piped");
    let (tx, rx) = std::sync::mpsc::channel();
    std::thread::spawn(move || {
        let mut lines = std::io::BufReader::new(stderr).lines();
        while let Some(Ok(line)) = lines.next() {
            if let Some(addr) = line.strip_prefix("listening on ") {
                let _ = tx.send(addr.to_string());
            }
        }
    });
    rx.recv_timeout(Duration::from_secs(60))
        .unwrap_or_else(|_| panic!("{what} never reported an address"))
}

fn spawn_shard(index: u32, addr: &str, cache_dir: Option<&std::path::Path>) -> Daemon {
    let mut cmd = Command::new(env!("CARGO_BIN_EXE_cgra-serve"));
    cmd.args(["--addr", addr, "--workers", "1", "--shards"])
        .arg(SHARDS.to_string())
        .arg("--shard")
        .arg(index.to_string())
        .stdout(Stdio::null())
        .stderr(Stdio::piped());
    if let Some(dir) = cache_dir {
        cmd.arg("--cache-dir").arg(dir);
    }
    let mut child = cmd.spawn().expect("spawn cgra-serve");
    let addr = wait_listening(&mut child, "cgra-serve");
    Daemon { child, addr }
}

fn spawn_router(shards: &[String]) -> Daemon {
    let mut child = Command::new(env!("CARGO_BIN_EXE_cgra-router"))
        .args(["--addr", "127.0.0.1:0", "--shards"])
        .arg(shards.join(","))
        .args(["--attempts", "3", "--backoff-ms", "5", "--probe-ms", "150"])
        .stdout(Stdio::null())
        .stderr(Stdio::piped())
        .spawn()
        .expect("spawn cgra-router");
    let addr = wait_listening(&mut child, "cgra-router");
    Daemon { child, addr }
}

/// Requests a protocol shutdown and requires the process to exit
/// cleanly on its own within the deadline.
fn shutdown_daemon(mut daemon: Daemon, what: &str) {
    if let Ok(mut c) = Client::connect(&daemon.addr) {
        let _ = c.shutdown();
    }
    let deadline = Instant::now() + Duration::from_secs(30);
    loop {
        match daemon.child.try_wait().expect("wait child") {
            Some(status) => {
                assert!(status.success(), "{what} exited with {status}");
                return;
            }
            None if Instant::now() > deadline => {
                let _ = daemon.child.kill();
                panic!("{what} did not exit after protocol shutdown");
            }
            None => std::thread::sleep(Duration::from_millis(20)),
        }
    }
}

#[test]
fn sigkilled_shard_recovers_behind_external_router() {
    let cells = build_cells();
    // Shard 0 keeps a persistent segment across the kill, like a
    // supervised fleet daemon restarted with the same --cache-dir:
    // the revived process must replay the exact baseline bytes.
    let dir = std::env::temp_dir().join(format!("cgra-router-smoke-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let shard0 = spawn_shard(0, "127.0.0.1:0", Some(&dir));
    let shard1 = spawn_shard(1, "127.0.0.1:0", None);
    let shard0_addr = shard0.addr.clone();
    let router = spawn_router(&[shard0.addr.clone(), shard1.addr.clone()]);

    // Prime every cell through the router and pin the exact bytes.
    let mut client = Client::connect(&router.addr).expect("connect router");
    let mut expected = Vec::new();
    for (i, cell) in cells.iter().enumerate() {
        let id = format!("prime-{i}");
        client.send_line(&map_line(&id, cell)).expect("prime send");
        let r = client.recv_response().expect("prime response");
        assert_eq!(r.id, id, "router must never cross-deliver");
        expected.push(r.result_text);
    }
    // Warm replay through the router must be byte-identical.
    for (i, cell) in cells.iter().enumerate() {
        client
            .send_line(&map_line("replay", cell))
            .expect("replay send");
        let r = client.recv_response().expect("replay response");
        assert_eq!(r.result_text, expected[i], "warm replay changed bytes");
    }

    // SIGKILL shard 0 — no drain, no goodbye (Child::kill is SIGKILL
    // on unix).
    let mut shard0 = shard0;
    shard0.child.kill().expect("kill shard 0");
    let _ = shard0.child.wait();

    let dead = cells.iter().position(|c| c.owner == 0).unwrap();
    let alive = cells.iter().position(|c| c.owner == 1).unwrap();

    // The healthy shard keeps answering byte-identically; the dead
    // shard's keys must come back as *typed* refusals (the breaker
    // fast-fails with a retry hint once it opens), never junk.
    let mut saw_typed_refusal = false;
    for round in 0..10 {
        let mut c = Client::connect(&router.addr).expect("reconnect router");
        c.send_line(&map_line(&format!("outage-{round}"), &cells[dead]))
            .expect("outage send");
        match c.recv_response() {
            Ok(r) => panic!("dead shard answered: {}", r.result_text),
            Err(e) => {
                assert!(
                    matches!(
                        e.kind,
                        ErrorKind::Unavailable | ErrorKind::ShuttingDown | ErrorKind::Internal
                    ),
                    "outage error must be typed, got {e}"
                );
                if e.kind == ErrorKind::Unavailable {
                    assert!(
                        e.retry_after_ms.is_some(),
                        "unavailable must carry a retry hint"
                    );
                    saw_typed_refusal = true;
                }
            }
        }
        c.send_line(&map_line("alive", &cells[alive]))
            .expect("alive send");
        let r = c.recv_response().expect("healthy shard must still answer");
        assert_eq!(
            r.result_text, expected[alive],
            "healthy shard changed bytes"
        );
    }
    assert!(
        saw_typed_refusal,
        "breaker never fast-failed with a typed unavailable"
    );

    // Revive shard 0 on its original port with its original segment.
    let revived = spawn_shard(0, &shard0_addr, Some(&dir));

    // The router must re-admit it via the half-open probe and serve
    // the exact baseline bytes again.
    let deadline = Instant::now() + Duration::from_secs(15);
    let mut recovered = false;
    while Instant::now() < deadline {
        let mut c = Client::connect(&router.addr).expect("reconnect router");
        c.send_line(&map_line("recover", &cells[dead]))
            .expect("recover send");
        if let Ok(r) = c.recv_response() {
            assert_eq!(
                r.result_text, expected[dead],
                "revived shard must replay the baseline bytes"
            );
            recovered = true;
            break;
        }
        std::thread::sleep(Duration::from_millis(50));
    }
    assert!(recovered, "router never re-admitted the revived shard");

    // Protocol shutdowns all around: router first (it owns no state),
    // then the shards directly. Every process must exit cleanly.
    shutdown_daemon(router, "cgra-router");
    shutdown_daemon(revived, "revived cgra-serve shard 0");
    shutdown_daemon(shard1, "cgra-serve shard 1");
    let _ = std::fs::remove_dir_all(&dir);
}
