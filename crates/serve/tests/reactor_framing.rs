//! Seeded fuzz suite for the reactor's NDJSON framing.
//!
//! The reactor reassembles request frames from whatever byte chunks the
//! kernel hands it; nothing about TCP aligns segments with frames. These
//! tests drive the real TCP front end with adversarial segmentation —
//! frames split at arbitrary byte boundaries, many frames merged into
//! one segment, slow-loris one-byte-at-a-time writes, and mid-frame
//! disconnects — and assert the invariants that matter:
//!
//! * the daemon never panics or wedges;
//! * every completed request line produces exactly one response, in
//!   request order on its connection;
//! * a misbehaving connection never corrupts an adjacent connection's
//!   responses (ids and bytes stay paired with their own socket).
//!
//! All randomness is seeded `cgra_rng` — failures reproduce exactly.

#![cfg(unix)]

use cgra_rng::Rng;
use cgra_serve::json::{obj, s, Json};
use cgra_serve::server;
use cgra_serve::service::{Service, ServiceConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

fn kernel_text() -> String {
    cgra_dfg::text::print(&cgra_dfg::benchmarks::accum())
}

fn arch_text() -> String {
    let configs = cgra_arch::families::paper_configs();
    cgra_arch::text::print(&configs[3].arch) // homo-diag
}

fn map_line(id: &str) -> String {
    obj(vec![
        ("id", s(id)),
        ("cmd", s("map")),
        ("dfg", s(kernel_text())),
        ("arch", s(arch_text())),
        ("ii", Json::Int(1)),
        (
            "options",
            obj(vec![
                ("time_limit_us", Json::Int(60_000_000)),
                ("threads", Json::Int(1)),
            ]),
        ),
    ])
    .to_string()
}

fn stats_line(id: &str) -> String {
    obj(vec![("id", s(id)), ("cmd", s("stats"))]).to_string()
}

/// Boots a service on an ephemeral port and primes the result cache so
/// `map_line` requests are warm (the fuzz measures framing, not solves).
fn boot() -> (Arc<Service>, String, std::thread::JoinHandle<()>) {
    let service = Service::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let (addr, accept) = server::spawn_tcp(Arc::clone(&service), "127.0.0.1:0").expect("bind");
    let addr = addr.to_string();
    let mut prime = cgra_serve::client::Client::connect(&addr).expect("prime connection");
    prime
        .roundtrip_line(&map_line("prime"))
        .expect("prime solve");
    (service, addr, accept)
}

fn teardown(service: Arc<Service>, accept: std::thread::JoinHandle<()>) {
    service.initiate_shutdown();
    let _ = accept.join();
    service.join_workers();
}

/// Reads `n` response lines and asserts they echo `ids` in order — the
/// reactor owes in-request-order delivery per connection.
fn expect_responses(reader: &mut BufReader<TcpStream>, ids: &[String]) {
    for want in ids {
        let mut line = String::new();
        let n = reader.read_line(&mut line).expect("read response");
        assert!(n > 0, "connection closed before response for id {want}");
        let doc = Json::parse(line.trim()).expect("response parses");
        assert_eq!(
            doc.get("id").and_then(Json::as_str),
            Some(want.as_str()),
            "response out of order or cross-delivered"
        );
        assert_eq!(
            doc.get("ok").and_then(Json::as_bool),
            Some(true),
            "request {want} failed: {line}"
        );
    }
}

/// Frames split and merged across arbitrary segment boundaries: the
/// whole batch is one byte stream cut at seeded random offsets, with
/// occasional pauses so partial frames sit buffered across poll cycles.
#[test]
fn frames_reassemble_across_arbitrary_segment_boundaries() {
    let (service, addr, accept) = boot();
    for seed in 0..6u64 {
        let mut rng = Rng::seed_from_u64(0xF4A3 + seed);
        let mut stream = TcpStream::connect(&addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));

        // A mixed batch: cheap inline stats responses interleaved with
        // warm map replays (worker-side completions) — both must come
        // back in request order.
        let mut ids = Vec::new();
        let mut bytes = Vec::new();
        for i in 0..24 {
            let id = format!("f{seed}-{i}");
            let line = if rng.gen_bool(0.5) {
                stats_line(&id)
            } else {
                map_line(&id)
            };
            bytes.extend_from_slice(line.as_bytes());
            bytes.push(b'\n');
            ids.push(id);
        }

        let mut at = 0usize;
        while at < bytes.len() {
            let cut = rng.gen_range(1..64.min(bytes.len() - at + 1));
            stream.write_all(&bytes[at..at + cut]).expect("write chunk");
            stream.flush().expect("flush");
            at += cut;
            if rng.gen_bool(0.1) {
                // Leave a partial frame buffered across poll cycles.
                std::thread::sleep(Duration::from_millis(2));
            }
        }
        expect_responses(&mut reader, &ids);
    }
    teardown(service, accept);
}

/// Many complete frames merged into a single write: one segment, many
/// responses, still in order.
#[test]
fn merged_frames_in_one_segment_all_answer() {
    let (service, addr, accept) = boot();
    let mut stream = TcpStream::connect(&addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let ids: Vec<String> = (0..16).map(|i| format!("m-{i}")).collect();
    let mut batch = String::new();
    for id in &ids {
        batch.push_str(&map_line(id));
        batch.push('\n');
    }
    stream.write_all(batch.as_bytes()).expect("write batch");
    expect_responses(&mut reader, &ids);
    teardown(service, accept);
}

/// Slow-loris: a client dribbles one request a byte at a time while a
/// neighbor runs full-speed round trips. The dribbled request completes
/// once its newline lands; the neighbor never stalls on it.
#[test]
fn slow_loris_writer_does_not_stall_neighbors() {
    let (service, addr, accept) = boot();
    let loris_addr = addr.clone();
    let loris = std::thread::spawn(move || {
        let mut stream = TcpStream::connect(&loris_addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        let mut reader = BufReader::new(stream.try_clone().expect("clone"));
        let line = stats_line("loris");
        for chunk in line.as_bytes().chunks(3) {
            stream.write_all(chunk).expect("dribble");
            stream.flush().expect("flush");
            std::thread::sleep(Duration::from_millis(5));
        }
        stream.write_all(b"\n").expect("newline");
        expect_responses(&mut reader, &["loris".to_owned()]);
    });

    // Meanwhile the neighbor's requests must answer promptly.
    let mut client = cgra_serve::client::Client::connect(&addr).expect("neighbor");
    for i in 0..10 {
        let response = client
            .roundtrip_line(&map_line(&format!("n-{i}")))
            .expect("neighbor roundtrip");
        let doc = Json::parse(&response).expect("parses");
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
        assert_eq!(
            doc.get("id").and_then(Json::as_str),
            Some(format!("n-{i}").as_str())
        );
    }
    loris.join().expect("loris thread");
    teardown(service, accept);
}

/// Mid-frame disconnects — a half-written frame, then the socket drops.
/// The fragment must be discarded (never dispatched, never glued onto
/// another connection's frames) and neighbors keep answering.
#[test]
fn mid_frame_disconnect_never_corrupts_neighbors() {
    let (service, addr, accept) = boot();
    for seed in 0..8u64 {
        let mut rng = Rng::seed_from_u64(0xD15C + seed);
        let line = map_line(&format!("dead-{seed}"));
        let cut = rng.gen_range(1..line.len()); // strictly mid-frame
        {
            let mut stream = TcpStream::connect(&addr).expect("connect");
            stream.set_nodelay(true).expect("nodelay");
            stream.write_all(&line.as_bytes()[..cut]).expect("partial");
            stream.flush().expect("flush");
            // Dropped here: RST/FIN with a partial frame buffered.
        }
        let mut client = cgra_serve::client::Client::connect(&addr).expect("neighbor");
        let response = client
            .roundtrip_line(&map_line(&format!("alive-{seed}")))
            .expect("neighbor roundtrip");
        let doc = Json::parse(&response).expect("parses");
        assert_eq!(
            doc.get("id").and_then(Json::as_str),
            Some(format!("alive-{seed}").as_str()),
            "neighbor got someone else's response"
        );
        assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
    }
    // The dead fragments never became requests.
    let stats = service.stats_json();
    let requests = stats.get("requests").and_then(Json::as_u64).unwrap();
    assert_eq!(requests, 1 + 8, "a partial frame was dispatched"); // prime + 8 alive
    teardown(service, accept);
}

/// A client that disconnects after dispatch but before its response is
/// ready: the completion must be dropped cleanly (stale socket), and a
/// coalesced neighbor on the same solve still gets its bytes.
#[test]
fn disconnect_before_response_drops_completion_cleanly() {
    let (service, addr, accept) = boot();
    // A cold request (unique options fingerprint) so the solve is
    // genuinely in flight when the socket dies.
    let cold_line = |id: &str, us: i64| {
        obj(vec![
            ("id", s(id)),
            ("cmd", s("map")),
            ("dfg", s(kernel_text())),
            ("arch", s(arch_text())),
            ("ii", Json::Int(1)),
            (
                "options",
                obj(vec![
                    ("time_limit_us", Json::Int(us)),
                    ("threads", Json::Int(1)),
                ]),
            ),
        ])
        .to_string()
    };
    {
        let mut stream = TcpStream::connect(&addr).expect("connect");
        stream.set_nodelay(true).expect("nodelay");
        stream
            .write_all(format!("{}\n", cold_line("vanishes", 59_000_001)).as_bytes())
            .expect("send");
        stream.flush().expect("flush");
        // Dropped with the solve (or its fan-out) still pending.
    }
    // An identical request coalesces onto the orphaned solve — its
    // response must arrive intact on *this* socket.
    let mut client = cgra_serve::client::Client::connect(&addr).expect("survivor");
    let response = client
        .roundtrip_line(&cold_line("survivor", 59_000_001))
        .expect("survivor roundtrip");
    let doc = Json::parse(&response).expect("parses");
    assert_eq!(doc.get("id").and_then(Json::as_str), Some("survivor"));
    assert_eq!(doc.get("ok").and_then(Json::as_bool), Some(true));
    teardown(service, accept);
}

/// Randomized multi-connection storm: every connection pipelines its own
/// id sequence with seeded chunking; each must get exactly its own ids
/// back, in order, regardless of how the others behave.
#[test]
fn concurrent_connections_never_cross_deliver() {
    let (service, addr, accept) = boot();
    std::thread::scope(|scope| {
        for conn in 0..4u64 {
            let addr = addr.clone();
            scope.spawn(move || {
                let mut rng = Rng::seed_from_u64(0xC4_055 + conn);
                let mut stream = TcpStream::connect(&addr).expect("connect");
                stream.set_nodelay(true).expect("nodelay");
                let mut reader = BufReader::new(stream.try_clone().expect("clone"));
                let mut ids = Vec::new();
                let mut bytes = Vec::new();
                for i in 0..20 {
                    let id = format!("x{conn}-{i}");
                    let line = if rng.gen_bool(0.3) {
                        stats_line(&id)
                    } else {
                        map_line(&id)
                    };
                    bytes.extend_from_slice(line.as_bytes());
                    bytes.push(b'\n');
                    ids.push(id);
                }
                let mut at = 0usize;
                while at < bytes.len() {
                    let cut = rng.gen_range(1..128.min(bytes.len() - at + 1));
                    stream.write_all(&bytes[at..at + cut]).expect("chunk");
                    at += cut;
                    if rng.gen_bool(0.05) {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                }
                expect_responses(&mut reader, &ids);
                // Half the connections hang up abruptly, half linger.
                if conn % 2 == 0 {
                    drop(stream);
                } else {
                    let _ = stream.shutdown(std::net::Shutdown::Write);
                    let mut rest = Vec::new();
                    let _ = stream.take(4096).read_to_end(&mut rest);
                }
            });
        }
    });
    teardown(service, accept);
}
