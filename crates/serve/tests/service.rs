//! End-to-end service behaviour: the differential correctness test,
//! cache-hit semantics, admission control and graceful shutdown.

use cgra_arch::families::{grid, FuMix, GridParams, Interconnect};
use cgra_mapper::{IlpMapper, MapperOptions};
use cgra_serve::client::Client;
use cgra_serve::json::{obj, Json};
use cgra_serve::server;
use cgra_serve::service::{Service, ServiceConfig};
use cgra_serve::wire::encode_map_report;
use cgra_serve::ErrorKind;
use std::sync::Arc;
use std::time::{Duration, Instant};

fn homo_diag_arch_text() -> String {
    cgra_arch::text::print(&grid(GridParams::paper(
        FuMix::Homogeneous,
        Interconnect::Diagonal,
    )))
}

fn kernel_text(name: &str) -> String {
    cgra_dfg::text::print(&(cgra_dfg::benchmarks::by_name(name)
        .expect("known kernel")
        .build)())
}

fn options_json() -> Json {
    obj(vec![
        ("time_limit_us", Json::Int(60_000_000)),
        ("threads", Json::Int(1)),
    ])
}

/// Zeroes every wall-clock field, recursively: two runs of the same
/// deterministic solve differ only in timing.
fn normalize_times(doc: &mut Json) {
    match doc {
        Json::Object(pairs) => {
            for (key, value) in pairs {
                if key.ends_with("_us") {
                    *value = Json::Int(0);
                } else {
                    normalize_times(value);
                }
            }
        }
        Json::Array(items) => items.iter_mut().for_each(normalize_times),
        _ => {}
    }
}

/// The differential test: N identical + M distinct concurrent requests
/// through the full TCP stack must produce reports identical to direct
/// in-process mapper calls, and the identical requests must collapse
/// onto one cache entry replayed byte-for-byte.
#[test]
fn differential_against_direct_mapper() {
    let service = Service::start(ServiceConfig {
        workers: 4,
        queue_capacity: 32,
        ..ServiceConfig::default()
    });
    let (addr, accept) = server::spawn_tcp(Arc::clone(&service), "127.0.0.1:0").unwrap();
    let addr = addr.to_string();

    let arch_text = homo_diag_arch_text();
    // Seed the cache with one solve of the kernel the identical batch
    // will repeat, so the batch exercises concurrent cache *replay*
    // (concurrent first-time misses each solve independently and agree
    // only modulo timing — the byte-identical guarantee is the cache's).
    let warmup = {
        let mut client = Client::connect(&addr).expect("connect");
        let response = client
            .map(&kernel_text("accum"), &arch_text, 1, Some(options_json()))
            .expect("warm-up map succeeds");
        assert!(!response.served.as_ref().unwrap().cache_hit);
        response.result_text
    };

    // 4 identical + 3 distinct, interleaved, all submitted concurrently.
    let identical = ["accum"; 4];
    let distinct = ["mac", "add_10", "2x2-f"];
    let submissions: Vec<&str> = identical.iter().chain(distinct.iter()).copied().collect();

    let responses: Vec<(String, String, bool)> = std::thread::scope(|scope| {
        let handles: Vec<_> = submissions
            .iter()
            .map(|name| {
                let addr = addr.clone();
                let arch_text = arch_text.clone();
                scope.spawn(move || {
                    let mut client = Client::connect(&addr).expect("connect");
                    let response = client
                        .map(&kernel_text(name), &arch_text, 1, Some(options_json()))
                        .expect("map request succeeds");
                    (
                        name.to_string(),
                        response.result_text,
                        response.served.expect("served stats").cache_hit,
                    )
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    });

    // Identical requests: all cache hits, every report byte-identical
    // to the seeded solve.
    let accum_responses: Vec<_> = responses
        .iter()
        .filter(|(name, ..)| name == "accum")
        .collect();
    assert_eq!(accum_responses.len(), 4);
    for (_, text, hit) in &accum_responses {
        assert!(*hit, "repeat of a cached request must be a cache hit");
        assert_eq!(
            text, &warmup,
            "cached replay must be byte-identical to the original report"
        );
    }

    // Every distinct response must match a direct mapper call modulo
    // wall-clock fields (the sequential solver is deterministic).
    let arch = cgra_arch::text::parse(&arch_text).unwrap();
    let options = MapperOptions {
        time_limit: Some(Duration::from_secs(60)),
        ..MapperOptions::default()
    };
    let mrrg = cgra_mrrg::build_mrrg(&arch, 1);
    for name in submissions
        .iter()
        .collect::<std::collections::BTreeSet<_>>()
    {
        let dfg = cgra_dfg::text::parse(&kernel_text(name)).unwrap();
        let direct = IlpMapper::new(options).map(&dfg, &mrrg);
        let mut expected = encode_map_report(&dfg, &mrrg, &direct);
        normalize_times(&mut expected);
        let (_, served_text, _) = responses
            .iter()
            .find(|(n, ..)| n == *name)
            .expect("every submission answered");
        let mut served_doc = Json::parse(served_text).unwrap();
        normalize_times(&mut served_doc);
        assert_eq!(
            served_doc.to_string(),
            expected.to_string(),
            "service and direct mapper disagree on `{name}`"
        );
    }

    let mut client = Client::connect(&addr).unwrap();
    client.shutdown().unwrap();
    accept.join().unwrap();
    service.join_workers();
}

#[test]
fn repeat_hits_cache_with_near_zero_solve_time() {
    let service = Service::start(ServiceConfig::default());
    let dfg = kernel_text("accum");
    let arch = homo_diag_arch_text();
    let line = |id: &str| {
        format!(
            "{{\"id\":\"{id}\",\"cmd\":\"map\",\"dfg\":{},\"arch\":{},\"ii\":1}}",
            cgra_serve::json::s(&dfg),
            cgra_serve::json::s(&arch),
        )
    };
    let first = cgra_serve::client::decode_response(&service.handle(&line("a"))).unwrap();
    let second = cgra_serve::client::decode_response(&service.handle(&line("b"))).unwrap();
    let first_served = first.served.unwrap();
    let second_served = second.served.unwrap();
    assert!(!first_served.cache_hit);
    assert!(second_served.cache_hit);
    assert_eq!(first.result_text, second.result_text);
    assert!(
        second_served.solve < Duration::from_millis(50),
        "cache hit should have near-zero solve time, got {:?}",
        second_served.solve
    );
    assert!(second_served.solve < first_served.solve);

    // Third request with *different options* must not hit the first
    // entry — content addressing covers the options fingerprint.
    let third = cgra_serve::client::decode_response(&service.handle(&format!(
        "{{\"id\":\"c\",\"cmd\":\"map\",\"dfg\":{},\"arch\":{},\"ii\":1,\"options\":{{\"seed\":7}}}}",
        cgra_serve::json::s(&dfg),
        cgra_serve::json::s(&arch),
    )))
    .unwrap();
    assert!(!third.served.unwrap().cache_hit);

    service.initiate_shutdown();
    service.join_workers();
}

#[test]
fn warm_mrrg_is_reported_for_new_kernel_on_known_arch() {
    let service = Service::start(ServiceConfig::default());
    let arch = homo_diag_arch_text();
    let submit = |id: &str, kernel: &str| {
        let line = format!(
            "{{\"id\":\"{id}\",\"cmd\":\"map\",\"dfg\":{},\"arch\":{},\"ii\":1}}",
            cgra_serve::json::s(kernel_text(kernel)),
            cgra_serve::json::s(&arch),
        );
        cgra_serve::client::decode_response(&service.handle(&line)).unwrap()
    };
    let first = submit("a", "accum");
    // Different kernel, same fabric: a cache miss, but the session's
    // II=1 MRRG is already built.
    let second = submit("b", "mac");
    assert!(!first.served.unwrap().mrrg_warm);
    let second_served = second.served.unwrap();
    assert!(!second_served.cache_hit);
    assert!(second_served.mrrg_warm);
    service.initiate_shutdown();
    service.join_workers();
}

#[test]
fn malformed_inputs_get_typed_errors_not_panics() {
    let service = Service::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let cases: Vec<(String, ErrorKind)> = vec![
        ("not json at all".into(), ErrorKind::Parse),
        ("{\"cmd\":\"map\"}".into(), ErrorKind::Request),
        (
            "{\"id\":\"x\",\"cmd\":\"teleport\"}".into(),
            ErrorKind::Request,
        ),
        (
            "{\"id\":\"x\",\"cmd\":\"map\",\"dfg\":\"bogus\",\"arch\":\"bogus\",\"ii\":0}".into(),
            ErrorKind::Request,
        ),
        (
            format!(
                "{{\"id\":\"x\",\"cmd\":\"map\",\"dfg\":\"bogus\",\"arch\":{},\"ii\":1}}",
                cgra_serve::json::s(homo_diag_arch_text())
            ),
            ErrorKind::Dfg,
        ),
        (
            format!(
                "{{\"id\":\"x\",\"cmd\":\"map\",\"dfg\":{},\"arch\":\"bogus\",\"ii\":1}}",
                cgra_serve::json::s(kernel_text("accum"))
            ),
            ErrorKind::Arch,
        ),
    ];
    for (line, expected) in cases {
        let error = cgra_serve::client::decode_response(&service.handle(&line))
            .expect_err("malformed input must fail");
        assert_eq!(error.kind, expected, "for line {line:?}");
    }
    service.initiate_shutdown();
    service.join_workers();
}

/// Admission control + graceful shutdown, against a deliberately tiny
/// pool: one worker, queue bound 1. A slow solve occupies the worker, a
/// second request queues, a third is rejected `overloaded`; shutdown
/// then fails the queued request with `shutting_down` and cancels the
/// in-flight solve, which still answers with a clean timeout report.
#[test]
fn admission_control_and_graceful_shutdown() {
    let service = Service::start(ServiceConfig {
        workers: 1,
        queue_capacity: 1,
        deadline: Some(Duration::from_secs(120)),
        ..ServiceConfig::default()
    });
    // cos_4 at II=1 on homo-diag takes many seconds to refute — plenty
    // of time to stack requests behind it. Each request gets a distinct
    // seed: identical requests would *coalesce* onto the in-flight
    // solve instead of exercising the queue bound.
    let slow_line = |id: &str, seed: u64| {
        format!(
            "{{\"id\":\"{id}\",\"cmd\":\"map\",\"dfg\":{},\"arch\":{},\"ii\":1,\"options\":{{\"time_limit_us\":120000000,\"seed\":{seed}}}}}",
            cgra_serve::json::s(kernel_text("cos_4")),
            cgra_serve::json::s(homo_diag_arch_text()),
        )
    };

    let started = Instant::now();
    let (in_flight, queued) = std::thread::scope(|scope| {
        let svc = &service;
        let in_flight = scope.spawn(move || svc.handle(&slow_line("in-flight", 1)));
        std::thread::sleep(Duration::from_millis(300)); // worker picks it up
        let queued = scope.spawn(move || svc.handle(&slow_line("queued", 2)));
        std::thread::sleep(Duration::from_millis(300)); // sits in the queue

        // Queue full: typed rejection, immediately.
        let rejected = cgra_serve::client::decode_response(&service.handle(&slow_line("extra", 3)))
            .expect_err("over-capacity request must be rejected");
        assert_eq!(rejected.kind, ErrorKind::Overloaded);

        service.initiate_shutdown();
        (in_flight.join().unwrap(), queued.join().unwrap())
    });

    // The queued request never started: typed shutting_down error.
    let queued_err =
        cgra_serve::client::decode_response(&queued).expect_err("queued request fails on shutdown");
    assert_eq!(queued_err.kind, ErrorKind::ShuttingDown);

    // The in-flight request was cooperatively cancelled: a clean *ok*
    // response whose outcome is a timeout, long before its 120 s budget.
    let in_flight_ok = cgra_serve::client::decode_response(&in_flight)
        .expect("in-flight request still answers cleanly");
    assert_eq!(
        in_flight_ok
            .result
            .get("outcome")
            .and_then(|o| o.get("kind"))
            .and_then(Json::as_str),
        Some("timeout"),
    );
    assert!(
        started.elapsed() < Duration::from_secs(60),
        "cancellation must cut the solve well before its budget"
    );

    // After shutdown: new requests get the typed error.
    let late = cgra_serve::client::decode_response(&service.handle(&slow_line("late", 4)))
        .expect_err("post-shutdown request must fail");
    assert_eq!(late.kind, ErrorKind::ShuttingDown);

    service.join_workers();
}

/// Request coalescing: K identical concurrent cold requests trigger
/// exactly one solve; every waiter receives the same result bytes, and
/// the attachees are marked `coalesced` without consuming queue slots.
#[test]
fn identical_concurrent_requests_coalesce_onto_one_solve() {
    let service = Service::start(ServiceConfig {
        workers: 1,
        queue_capacity: 1, // attachees must not need queue capacity
        deadline: Some(Duration::from_secs(120)),
        ..ServiceConfig::default()
    });
    // A deliberately slow solve so the attach window stays open.
    let line = |id: &str| {
        format!(
            "{{\"id\":\"{id}\",\"cmd\":\"map\",\"dfg\":{},\"arch\":{},\"ii\":1,\"options\":{{\"time_limit_us\":120000000}}}}",
            cgra_serve::json::s(kernel_text("cos_4")),
            cgra_serve::json::s(homo_diag_arch_text()),
        )
    };
    const ATTACHEES: usize = 3;
    let responses: Vec<String> = std::thread::scope(|scope| {
        let svc = &service;
        let leader = scope.spawn(move || svc.handle(&line("leader")));
        std::thread::sleep(Duration::from_millis(300)); // solve starts
        let followers: Vec<_> = (0..ATTACHEES)
            .map(|i| {
                let id = format!("follower-{i}");
                scope.spawn(move || svc.handle(&line(&id)))
            })
            .collect();
        std::thread::sleep(Duration::from_millis(300)); // all attached
        let stats = service.stats_json();
        assert_eq!(
            stats.get("coalesced").and_then(Json::as_u64),
            Some(ATTACHEES as u64),
            "every follower must attach, not queue"
        );
        assert_eq!(stats.get("solves").and_then(Json::as_u64), Some(0));
        assert_eq!(stats.get("queued").and_then(Json::as_u64), Some(0));
        // End the solve early; the cancelled solve still fans out a
        // clean timeout report to every waiter.
        service.initiate_shutdown();
        let mut all = vec![leader.join().unwrap()];
        all.extend(followers.into_iter().map(|h| h.join().unwrap()));
        all
    });

    assert_eq!(
        service.stats_json().get("solves").and_then(Json::as_u64),
        Some(1),
        "K identical requests must cost exactly one solve"
    );
    let mut texts = std::collections::BTreeSet::new();
    let mut coalesced_count = 0;
    for raw in &responses {
        let decoded = cgra_serve::client::decode_response(raw).expect("fan-out answers ok");
        texts.insert(decoded.result_text.clone());
        let served = decoded.served.expect("solve responses carry served");
        assert!(!served.cache_hit);
        if served.coalesced {
            coalesced_count += 1;
        }
    }
    assert_eq!(texts.len(), 1, "all waiters share one result byte-for-byte");
    assert_eq!(coalesced_count, ATTACHEES, "exactly the followers coalesce");
    service.join_workers();
}

/// Sharding: a daemon that does not own an architecture's hash range
/// answers `wrong_shard` without parsing-cost side effects; the owning
/// shard serves it normally.
#[test]
fn sharded_service_rejects_foreign_architectures() {
    let arch_text = homo_diag_arch_text();
    let arch_hash = cgra_arch::text::parse(&arch_text).unwrap().content_hash();
    let owner = (arch_hash % 2) as u32;
    let line = format!(
        "{{\"id\":\"s\",\"cmd\":\"map\",\"dfg\":{},\"arch\":{},\"ii\":1}}",
        cgra_serve::json::s(kernel_text("accum")),
        cgra_serve::json::s(&arch_text),
    );

    let wrong = Service::start(ServiceConfig {
        shards: 2,
        shard_index: 1 - owner,
        ..ServiceConfig::default()
    });
    let err = cgra_serve::client::decode_response(&wrong.handle(&line))
        .expect_err("foreign shard must reject");
    assert_eq!(err.kind, ErrorKind::WrongShard);
    wrong.initiate_shutdown();
    wrong.join_workers();

    let owning = Service::start(ServiceConfig {
        shards: 2,
        shard_index: owner,
        ..ServiceConfig::default()
    });
    let ok = cgra_serve::client::decode_response(&owning.handle(&line))
        .expect("owning shard serves normally");
    assert!(!ok.served.unwrap().cache_hit);
    owning.initiate_shutdown();
    owning.join_workers();
}

/// Two-tier persistence: a result solved by one service generation is
/// replayed byte-identically by a fresh service sharing the same cache
/// directory — the hit comes off the mmap'd segment, not memory.
#[test]
fn persistent_tier_survives_service_restart() {
    let dir = std::env::temp_dir().join(format!("cgra-serve-restart-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let line = format!(
        "{{\"id\":\"p\",\"cmd\":\"map\",\"dfg\":{},\"arch\":{},\"ii\":1}}",
        cgra_serve::json::s(kernel_text("accum")),
        cgra_serve::json::s(homo_diag_arch_text()),
    );

    let first_text = {
        let service = Service::start(ServiceConfig {
            cache_dir: Some(dir.clone()),
            ..ServiceConfig::default()
        });
        let response = cgra_serve::client::decode_response(&service.handle(&line)).unwrap();
        assert!(!response.served.unwrap().cache_hit);
        service.initiate_shutdown();
        service.join_workers();
        response.result_text
    };

    let service = Service::start(ServiceConfig {
        cache_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    });
    let replay = cgra_serve::client::decode_response(&service.handle(&line)).unwrap();
    assert!(
        replay.served.unwrap().cache_hit,
        "restart must not re-solve"
    );
    assert_eq!(
        replay.result_text, first_text,
        "byte-identical across tiers"
    );
    assert_eq!(
        service
            .stats_json()
            .get("cache_disk_hits")
            .and_then(Json::as_u64),
        Some(1),
        "the hit must come from the persistent tier"
    );
    service.initiate_shutdown();
    service.join_workers();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn min_ii_requests_answer_and_cache() {
    let service = Service::start(ServiceConfig::default());
    // extreme (19 internal ops) cannot fit 16 single-context ALUs, so
    // II=1 is a fast capacity shortcut and II=2 maps.
    let line = format!(
        "{{\"id\":\"m\",\"cmd\":\"min_ii\",\"dfg\":{},\"arch\":{},\"max_ii\":2,\"options\":{{\"time_limit_us\":60000000,\"warm_start\":true}}}}",
        cgra_serve::json::s(kernel_text("extreme")),
        cgra_serve::json::s(homo_diag_arch_text()),
    );
    let response = cgra_serve::client::decode_response(&service.handle(&line)).unwrap();
    assert_eq!(
        response.result.get("min_ii").and_then(Json::as_u64),
        Some(2)
    );
    let attempts = response.result.get("attempts").unwrap().as_array().unwrap();
    assert_eq!(attempts.len(), 2);
    // Re-asking is a pure cache hit.
    let again = cgra_serve::client::decode_response(&service.handle(&line)).unwrap();
    assert!(again.served.unwrap().cache_hit);
    assert_eq!(again.result_text, response.result_text);
    service.initiate_shutdown();
    service.join_workers();
}

/// Deadline shaping: once the solve-time EWMA is established, a cold
/// request whose `deadline_ms` cannot possibly be met is refused
/// immediately with a typed `overloaded` + `retry_after_ms` — while a
/// *warm* request with the same hopeless deadline is still served
/// (deadlines shape admission only; they never enter cache keys).
#[test]
fn unmeetable_deadline_sheds_cold_but_not_warm() {
    let service = Service::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    let line = |id: &str, seed: u64, deadline_ms: Option<u64>| {
        let deadline = match deadline_ms {
            Some(ms) => format!(",\"deadline_ms\":{ms}"),
            None => String::new(),
        };
        format!(
            "{{\"id\":\"{id}\",\"cmd\":\"map\",\"dfg\":{},\"arch\":{},\"ii\":1,\"options\":{{\"seed\":{seed}}}{deadline}}}",
            cgra_serve::json::s(kernel_text("accum")),
            cgra_serve::json::s(homo_diag_arch_text()),
        )
    };
    // Establish the solve-time EWMA with one real solve.
    let first = cgra_serve::client::decode_response(&service.handle(&line("warmup", 1, None)))
        .expect("warmup solve");

    // Cold request (distinct seed), zero deadline: predicted completion
    // exceeds the budget, so admission refuses it without queueing.
    let err = cgra_serve::client::decode_response(&service.handle(&line("cold", 2, Some(0))))
        .expect_err("unmeetable deadline must be shed");
    assert_eq!(err.kind, ErrorKind::Overloaded);
    assert!(
        err.retry_after_ms.is_some(),
        "deadline shed must carry a retry hint"
    );
    assert!(
        err.detail.contains("deadline"),
        "detail should name the deadline, got: {}",
        err.detail
    );

    // Warm lane: the same request as the warmup, same hopeless
    // deadline — served from cache, byte-identical.
    let warm = cgra_serve::client::decode_response(&service.handle(&line("warm", 1, Some(0))))
        .expect("warm requests bypass deadline shaping");
    assert!(warm.served.unwrap().cache_hit);
    assert_eq!(warm.result_text, first.result_text);
    assert_eq!(
        service
            .stats_json()
            .get("shed_deadline")
            .and_then(Json::as_u64),
        Some(1)
    );
    service.initiate_shutdown();
    service.join_workers();
}

/// Sustained overload trips the brownout: once the queue has sat at
/// 3/4 capacity or above for longer than the window, cold admission
/// steps down and refusals say so — while warm requests keep flowing.
#[test]
fn sustained_overload_brownout_sheds_cold_keeps_warm() {
    let service = Service::start(ServiceConfig {
        workers: 1,
        queue_capacity: 4,
        brownout_window: Duration::from_millis(50),
        deadline: Some(Duration::from_secs(120)),
        ..ServiceConfig::default()
    });
    // Prime the warm lane while the service is idle.
    let warm_line = format!(
        "{{\"id\":\"w\",\"cmd\":\"map\",\"dfg\":{},\"arch\":{},\"ii\":1}}",
        cgra_serve::json::s(kernel_text("accum")),
        cgra_serve::json::s(homo_diag_arch_text()),
    );
    let warm_text = cgra_serve::client::decode_response(&service.handle(&warm_line))
        .expect("prime")
        .result_text;

    // Saturate: 1 in-flight + 4 queued slow solves (distinct seeds so
    // nothing coalesces), held there past the brownout window.
    let slow_line = |id: &str, seed: u64| {
        format!(
            "{{\"id\":\"{id}\",\"cmd\":\"map\",\"dfg\":{},\"arch\":{},\"ii\":1,\"options\":{{\"time_limit_us\":120000000,\"seed\":{seed}}}}}",
            cgra_serve::json::s(kernel_text("cos_4")),
            cgra_serve::json::s(homo_diag_arch_text()),
        )
    };
    std::thread::scope(|scope| {
        let svc = &service;
        let slow: Vec<_> = (0..5u64)
            .map(|i| {
                let line = slow_line(&format!("slow-{i}"), i + 1);
                let handle = scope.spawn(move || svc.handle(&line));
                std::thread::sleep(Duration::from_millis(100));
                handle
            })
            .collect();
        // The queue has been >= 3/4 full for several windows now: a new
        // cold request must be refused as a *brownout* shed.
        std::thread::sleep(Duration::from_millis(200));
        let err = cgra_serve::client::decode_response(&service.handle(&slow_line("cold", 99)))
            .expect_err("cold request under brownout must be shed");
        assert_eq!(err.kind, ErrorKind::Overloaded);
        assert!(err.retry_after_ms.is_some());
        assert!(
            err.detail.contains("brownout"),
            "sustained overload must shed as brownout, got: {}",
            err.detail
        );
        let stats = service.stats_json();
        assert!(stats.get("shed_brownout").and_then(Json::as_u64) >= Some(1));
        assert!(stats.get("brownout_level").and_then(Json::as_u64) >= Some(1));

        // The warm lane is untouched: same bytes, still a cache hit.
        let warm = cgra_serve::client::decode_response(&service.handle(&warm_line))
            .expect("warm lane must survive brownout");
        assert!(warm.served.unwrap().cache_hit);
        assert_eq!(warm.result_text, warm_text);

        service.initiate_shutdown();
        for handle in slow {
            let _ = handle.join().unwrap();
        }
    });
    service.join_workers();
}

/// Every `shutting_down` refusal carries a `retry_after_ms` hint so a
/// supervisor-restarted fleet's clients know when to come back.
#[test]
fn shutdown_refusals_carry_retry_hint() {
    let service = Service::start(ServiceConfig {
        workers: 1,
        ..ServiceConfig::default()
    });
    service.initiate_shutdown();
    let line = format!(
        "{{\"id\":\"z\",\"cmd\":\"map\",\"dfg\":{},\"arch\":{},\"ii\":1}}",
        cgra_serve::json::s(kernel_text("accum")),
        cgra_serve::json::s(homo_diag_arch_text()),
    );
    let err = cgra_serve::client::decode_response(&service.handle(&line))
        .expect_err("post-shutdown request must fail");
    assert_eq!(err.kind, ErrorKind::ShuttingDown);
    assert_eq!(err.retry_after_ms, Some(1_000));
    service.join_workers();
}
