//! Wire-format round-trips and malformed-input rejection.
//!
//! Every report kind the service can emit must survive
//! encode → decode → encode with byte-identical text (the report types
//! deliberately have no `PartialEq`; text equality over the
//! key-order-preserving JSON writer is the stronger check anyway), and
//! every decoder must reject arbitrary mutations of valid documents
//! with a typed error, never a panic — the same seeded-mutation
//! discipline as `crates/dfg/tests/fuzz_parse.rs`.

use bilp::Certificate;
use cgra_arch::families::{grid, FuMix, GridParams, Interconnect};
use cgra_dfg::Dfg;
use cgra_mapper::{
    BuildInfeasible, IlpMapper, MapOutcome, MapperOptions, Objective, ObjectiveWeights, Session,
};
use cgra_mrrg::Mrrg;
use cgra_rng::Rng;
use cgra_serve::client::decode_response;
use cgra_serve::json::Json;
use cgra_serve::wire::{
    decode_map_report, decode_min_ii_report, decode_options, encode_certificate, encode_map_report,
    encode_min_ii_report, encode_options, error_response, ok_response, parse_request, ErrorKind,
    Served, WireError,
};
use std::time::Duration;

fn homo_diag() -> cgra_arch::Architecture {
    grid(GridParams::paper(
        FuMix::Homogeneous,
        Interconnect::Diagonal,
    ))
}

fn kernel(name: &str) -> Dfg {
    (cgra_dfg::benchmarks::by_name(name)
        .expect("known kernel")
        .build)()
}

fn quick_options() -> MapperOptions {
    MapperOptions {
        time_limit: Some(Duration::from_secs(60)),
        threads: 1,
        ..MapperOptions::default()
    }
}

/// encode → decode → encode must be a fixed point.
fn assert_map_roundtrip(dfg: &Dfg, mrrg: &Mrrg, report: &cgra_mapper::MapReport) {
    let first = encode_map_report(dfg, mrrg, report);
    let decoded = decode_map_report(dfg, mrrg, &first).expect("own encoding decodes");
    let second = encode_map_report(dfg, mrrg, &decoded);
    assert_eq!(first.to_string(), second.to_string());
}

#[test]
fn mapped_report_roundtrips() {
    let arch = homo_diag();
    let mrrg = cgra_mrrg::build_mrrg(&arch, 1);
    for name in ["accum", "mac", "add_10"] {
        let dfg = kernel(name);
        let report = IlpMapper::new(quick_options()).map(&dfg, &mrrg);
        assert!(
            matches!(report.outcome, MapOutcome::Mapped { .. }),
            "{name} should map at II=1"
        );
        assert_map_roundtrip(&dfg, &mrrg, &report);
    }
}

#[test]
fn synthetic_outcome_and_certificate_variants_roundtrip() {
    // Start from a real report (for genuine formulation/solver stats),
    // then swap in every outcome, infeasibility reason and certificate
    // variant the wire format must carry.
    let arch = homo_diag();
    let mrrg = cgra_mrrg::build_mrrg(&arch, 1);
    let dfg = kernel("accum");
    let base = IlpMapper::new(quick_options()).map(&dfg, &mrrg);

    let reasons = [
        None,
        Some(BuildInfeasible::NoCompatibleSlot {
            op: "n3".to_owned(),
            kind: "mul".parse().expect("mnemonic parses"),
        }),
        Some(BuildInfeasible::CapacityExceeded {
            matched: 19,
            ops: 16,
        }),
        Some(BuildInfeasible::UnroutableSink {
            from: "n1".to_owned(),
            to: "n2".to_owned(),
        }),
    ];
    let certificates = [
        None,
        Some(Certificate::Certified {
            steps: 1234,
            bytes: 56789,
        }),
        Some(Certificate::Unchecked {
            reason: "proof replay budget exhausted".to_owned(),
        }),
        Some(Certificate::CheckFailed {
            detail: "step 17: clause not implied".to_owned(),
        }),
    ];
    for reason in reasons {
        for certificate in &certificates {
            let mut report = base.clone();
            report.outcome = MapOutcome::Infeasible {
                reason: reason.clone(),
            };
            report.infeasible_core = Some(vec![
                "place:n3".to_owned(),
                "route:n1->n3".to_owned(),
                "mux-excl".to_owned(),
            ]);
            report.certificate = certificate.clone();
            assert_map_roundtrip(&dfg, &mrrg, &report);
        }
    }
    let mut timeout = base.clone();
    timeout.outcome = MapOutcome::Timeout;
    timeout.infeasible_core = None;
    timeout.certificate = None;
    assert_map_roundtrip(&dfg, &mrrg, &timeout);
}

#[test]
fn certificate_variants_roundtrip_directly() {
    let variants = [
        Certificate::Certified { steps: 0, bytes: 0 },
        Certificate::Unchecked {
            reason: "time".to_owned(),
        },
        Certificate::CheckFailed {
            detail: "bad step".to_owned(),
        },
    ];
    for c in variants {
        let doc = encode_certificate(&c);
        let decoded = cgra_serve::wire::decode_certificate(&doc).unwrap();
        assert_eq!(doc.to_string(), encode_certificate(&decoded).to_string());
    }
}

#[test]
fn min_ii_report_roundtrips() {
    // extreme: II=1 rejected by the capacity shortcut (an infeasible
    // attempt with a reason), II=2 maps — both attempt shapes in one
    // report, produced cheaply.
    let session = Session::new(
        homo_diag(),
        MapperOptions {
            warm_start: true,
            ..quick_options()
        },
    );
    for name in ["accum", "extreme"] {
        let dfg = kernel(name);
        let report = session.min_ii(&dfg, 2);
        assert_eq!(report.min_ii, Some(if name == "accum" { 1 } else { 2 }));
        let first = encode_min_ii_report(&dfg, &report, |ii| session.mrrg(ii));
        let decoded = decode_min_ii_report(&dfg, &first, |ii| session.mrrg(ii)).expect("decodes");
        let second = encode_min_ii_report(&dfg, &decoded, |ii| session.mrrg(ii));
        assert_eq!(first.to_string(), second.to_string());
    }
}

#[test]
fn options_roundtrip_every_field() {
    let full = MapperOptions {
        time_limit: Some(Duration::from_micros(123_456_789)),
        optimize: true,
        objective: Objective::Weighted(ObjectiveWeights {
            wire: 1,
            mux: 5,
            register: 3,
        }),
        commutativity: false,
        mux_exclusivity: false,
        redundant_capacity: false,
        seed: 0xDEAD_BEEF,
        warm_start: true,
        threads: 3,
        presolve: false,
        reach_reduction: false,
        incremental: false,
        conflict_limit: Some(10_000),
        objective_stop: Some(-7),
        explain_infeasible: true,
        certify: true,
        mem_limit: Some(1 << 20),
        build_jobs: 4,
        anneal_fallback: true,
        seed_probes: 6,
        probe_budget: Some(Duration::from_millis(750)),
    };
    for options in [MapperOptions::default(), full] {
        let doc = encode_options(&options);
        let decoded = decode_options(Some(&doc)).expect("own encoding decodes");
        assert_eq!(doc.to_string(), encode_options(&decoded).to_string());
        // The content-address fingerprint must survive the trip too —
        // otherwise a client echoing options back would miss the cache.
        assert_eq!(
            cgra_serve::cache::options_fingerprint(&options),
            cgra_serve::cache::options_fingerprint(&decoded),
        );
    }
    // And an absent options block means defaults.
    let defaulted = decode_options(None).unwrap();
    assert_eq!(
        cgra_serve::cache::options_fingerprint(&MapperOptions::default()),
        cgra_serve::cache::options_fingerprint(&defaulted),
    );
}

// ---------------------------------------------------------------------
// Malformed-input rejection (seeded fuzz, same recipe as the DFG
// parser's `fuzz_parse.rs`)
// ---------------------------------------------------------------------

/// Applies 1..=8 random byte-level edits: flips, insertions, deletions,
/// chunk splices from elsewhere in the input, and truncations.
fn mutate(bytes: &mut Vec<u8>, rng: &mut Rng) {
    for _ in 0..=rng.below(7) {
        if bytes.is_empty() {
            bytes.push(rng.below(256) as u8);
            continue;
        }
        match rng.below(5) {
            0 => {
                let i = rng.gen_range(0..bytes.len());
                bytes[i] = rng.below(256) as u8;
            }
            1 => {
                let i = rng.gen_range(0..bytes.len() + 1);
                bytes.insert(i, rng.below(256) as u8);
            }
            2 => {
                let i = rng.gen_range(0..bytes.len());
                bytes.remove(i);
            }
            3 => {
                let src = rng.gen_range(0..bytes.len());
                let len = rng.gen_range(1..(bytes.len() - src).min(16) + 1);
                let chunk: Vec<u8> = bytes[src..src + len].to_vec();
                let dst = rng.gen_range(0..bytes.len() + 1);
                for (k, b) in chunk.into_iter().enumerate() {
                    bytes.insert(dst + k, b);
                }
            }
            _ => {
                let keep = rng.gen_range(0..bytes.len());
                bytes.truncate(keep);
            }
        }
    }
}

fn request_corpus() -> Vec<String> {
    let dfg = cgra_dfg::text::print(&kernel("accum"));
    let arch = cgra_arch::text::print(&homo_diag());
    let d = cgra_serve::json::s(&dfg).to_string();
    let a = cgra_serve::json::s(&arch).to_string();
    vec![
        format!("{{\"id\":\"r1\",\"cmd\":\"map\",\"dfg\":{d},\"arch\":{a},\"ii\":1}}"),
        format!(
            "{{\"id\":\"r2\",\"cmd\":\"map\",\"dfg\":{d},\"arch\":{a},\"ii\":4,\"options\":{}}}",
            Json::to_string(&encode_options(&MapperOptions::default()))
        ),
        format!("{{\"id\":\"r3\",\"cmd\":\"min_ii\",\"dfg\":{d},\"arch\":{a},\"max_ii\":8}}"),
        "{\"id\":\"r4\",\"cmd\":\"stats\"}".to_owned(),
        "{\"id\":\"r5\",\"cmd\":\"shutdown\"}".to_owned(),
    ]
}

#[test]
fn mutated_requests_never_panic() {
    let corpus = request_corpus();
    for seed in 0..48u64 {
        let mut rng = Rng::seed_from_u64(0x5E12_E001 + seed);
        for original in &corpus {
            let mut bytes = original.clone().into_bytes();
            mutate(&mut bytes, &mut rng);
            let garbled = String::from_utf8_lossy(&bytes);
            // A request or a typed error — never a panic.
            let _ = parse_request(&garbled);
        }
    }
}

#[test]
fn mutated_responses_never_panic() {
    let arch = homo_diag();
    let mrrg = cgra_mrrg::build_mrrg(&arch, 1);
    let dfg = kernel("accum");
    let report = IlpMapper::new(quick_options()).map(&dfg, &mrrg);
    let served = Served {
        cache_hit: false,
        mrrg_warm: true,
        coalesced: false,
        wait: Duration::from_micros(12),
        solve: Duration::from_micros(3400),
    };
    let corpus = vec![
        ok_response(
            "r1",
            &encode_map_report(&dfg, &mrrg, &report).to_string(),
            Some(&served),
        ),
        error_response(
            Some("r2"),
            &WireError::new(ErrorKind::Overloaded, "queue full"),
        ),
        error_response(None, &WireError::new(ErrorKind::Parse, "bad json")),
    ];
    for seed in 0..48u64 {
        let mut rng = Rng::seed_from_u64(0x5E12_E002 + seed);
        for original in &corpus {
            let mut bytes = original.clone().into_bytes();
            mutate(&mut bytes, &mut rng);
            let garbled = String::from_utf8_lossy(&bytes);
            let _ = decode_response(&garbled);
        }
    }
}

#[test]
fn mutated_report_documents_never_panic() {
    let arch = homo_diag();
    let mrrg = cgra_mrrg::build_mrrg(&arch, 1);
    let dfg = kernel("accum");
    let map_doc = encode_map_report(
        &dfg,
        &mrrg,
        &IlpMapper::new(quick_options()).map(&dfg, &mrrg),
    )
    .to_string();
    let session = Session::new(arch.clone(), quick_options());
    let min_ii_doc =
        encode_min_ii_report(&dfg, &session.min_ii(&dfg, 2), |ii| session.mrrg(ii)).to_string();
    for seed in 0..48u64 {
        let mut rng = Rng::seed_from_u64(0x5E12_E003 + seed);
        for original in [&map_doc, &min_ii_doc] {
            let mut bytes = original.clone().into_bytes();
            mutate(&mut bytes, &mut rng);
            let garbled = String::from_utf8_lossy(&bytes);
            // Mutations that stay valid JSON exercise the structural
            // decoders; either way, a typed error is the worst allowed
            // outcome.
            if let Ok(doc) = Json::parse(&garbled) {
                let _ = decode_map_report(&dfg, &mrrg, &doc);
                let _ = decode_min_ii_report(&dfg, &doc, |ii| session.mrrg(ii));
                let _ = Served::decode(&doc);
                let _ = cgra_serve::wire::decode_certificate(&doc);
                let _ = decode_options(Some(&doc));
            }
        }
    }
}

#[test]
fn pure_garbage_is_rejected_not_crashed() {
    let mut rng = Rng::seed_from_u64(0x5E12_6A5B);
    for _ in 0..512 {
        let len = rng.gen_range(0..256);
        let bytes: Vec<u8> = (0..len).map(|_| rng.below(256) as u8).collect();
        let garbled = String::from_utf8_lossy(&bytes);
        assert!(
            parse_request(&garbled).is_err(),
            "random bytes parsed as a request: {garbled:?}"
        );
        let _ = decode_response(&garbled);
    }
}
