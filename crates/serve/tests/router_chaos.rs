//! Chaos suites: the router + fleet under a deterministic fault plan.
//!
//! Each test spins up a real in-process fleet (sharded daemons over
//! TCP, the router in front) and sabotages it — a shard killed
//! mid-burst, forwards dropped mid-frame, a slow-loris upstream,
//! planned worker panics, torn segment tails — then asserts the
//! resilience invariants: responses are byte-identical to the no-fault
//! bytes or *typed* errors, nothing is cross-delivered, and the router
//! converges after the fleet heals.
//!
//! Built only with `--features fault-inject`. Plans are installed via
//! [`cgra_serve::fault::install`], whose guard holds a process-wide
//! lock: the suites serialize instead of racing on the global event
//! counters, so every test is still deterministic under `--test-threads`
//! defaults.

#![cfg(feature = "fault-inject")]

use cgra_arch::families::paper_configs;
use cgra_serve::client::Client;
use cgra_serve::fault::{install, FaultPlan};
use cgra_serve::json::{obj, s, Json};
use cgra_serve::router::{spawn_router, Router, RouterConfig};
use cgra_serve::server;
use cgra_serve::service::{Service, ServiceConfig};
use cgra_serve::ErrorKind;
use std::sync::Arc;
use std::time::{Duration, Instant};

const SHARDS: u32 = 2;

/// Small warm cells spanning both shards of a 2-shard fleet.
struct Cell {
    dfg_text: String,
    arch_text: String,
    owner: usize,
    expected: std::sync::Mutex<Option<String>>,
}

fn build_cells() -> Vec<Cell> {
    let accum = cgra_dfg::text::print(&cgra_dfg::benchmarks::accum());
    let cells: Vec<Cell> = paper_configs()
        .iter()
        .filter(|c| c.contexts == 1)
        .map(|config| Cell {
            dfg_text: accum.clone(),
            arch_text: cgra_arch::text::print(&config.arch),
            owner: (config.arch.content_hash() % SHARDS as u64) as usize,
            expected: std::sync::Mutex::new(None),
        })
        .collect();
    assert!(
        cells.iter().any(|c| c.owner == 0) && cells.iter().any(|c| c.owner == 1),
        "paper configs must span both shards"
    );
    cells
}

fn map_line(id: &str, cell: &Cell) -> String {
    obj(vec![
        ("id", s(id)),
        ("cmd", s("map")),
        ("dfg", s(cell.dfg_text.clone())),
        ("arch", s(cell.arch_text.clone())),
        ("ii", Json::Int(1)),
        (
            "options",
            obj(vec![
                ("time_limit_us", Json::Int(30_000_000)),
                ("threads", Json::Int(1)),
            ]),
        ),
    ])
    .to_string()
}

struct Shard {
    addr: String,
    service: Arc<Service>,
    accept: std::thread::JoinHandle<()>,
}

fn start_shard(index: u32, addr: &str, cache_dir: Option<std::path::PathBuf>) -> Shard {
    let service = Service::start(ServiceConfig {
        workers: 1,
        shards: SHARDS,
        shard_index: index,
        deadline: None,
        cache_dir,
        ..ServiceConfig::default()
    });
    let (local, accept) = server::spawn_tcp(Arc::clone(&service), addr).expect("bind shard");
    Shard {
        addr: local.to_string(),
        service,
        accept,
    }
}

fn stop_shard(shard: Shard) {
    shard.service.initiate_shutdown();
    let _ = shard.accept.join();
    shard.service.join_workers();
}

fn test_router_config(shards: Vec<String>) -> RouterConfig {
    RouterConfig {
        shards,
        max_attempts: 3,
        backoff_base: Duration::from_millis(5),
        backoff_cap: Duration::from_millis(50),
        breaker_threshold: 3,
        probe_interval: Duration::from_millis(150),
        seed: 0xC4A05,
        ..RouterConfig::default()
    }
}

/// Primes every cell through the router and pins the response bytes.
fn prime(router_addr: &str, cells: &[Cell]) {
    let mut client = Client::connect(router_addr).expect("connect router");
    for (i, cell) in cells.iter().enumerate() {
        let line = map_line(&format!("prime-{i}"), cell);
        client.send_line(&line).expect("prime send");
        let r = client.recv_response().expect("prime response");
        *cell.expected.lock().unwrap() = Some(r.result_text);
    }
}

/// A shard is killed mid-burst and restarted; every response during the
/// outage must be the exact baseline bytes or a typed error, and the
/// router must serve the revived shard's keys again within one
/// half-open probe interval.
#[test]
fn killed_shard_yields_typed_errors_and_router_reconverges() {
    // Empty plan: no injected faults, but the guard serializes this
    // suite against the others' global counters.
    let _guard = install(FaultPlan::default());
    let cells = build_cells();
    // Shard 0 persists its results: the revived daemon must replay the
    // exact baseline bytes from the disk tier, like a supervised fleet
    // daemon restarted with the same --cache-dir would.
    let dir = std::env::temp_dir().join(format!("cgra-chaos-kill-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let shard0 = start_shard(0, "127.0.0.1:0", Some(dir.clone()));
    let shard1 = start_shard(1, "127.0.0.1:0", None);
    let shard0_addr = shard0.addr.clone();
    let probe_interval = Duration::from_millis(150);
    let router = Router::new(test_router_config(vec![
        shard0.addr.clone(),
        shard1.addr.clone(),
    ]));
    let (router_addr, router_accept) =
        spawn_router(Arc::clone(&router), "127.0.0.1:0").expect("bind router");
    let router_addr = router_addr.to_string();
    prime(&router_addr, &cells);

    let shard0_slot = std::sync::Mutex::new(Some(shard0));
    let (ok_count, typed_errors) = std::thread::scope(|scope| {
        let chaos = scope.spawn(|| {
            std::thread::sleep(Duration::from_millis(50));
            let shard = shard0_slot.lock().unwrap().take().expect("shard present");
            stop_shard(shard);
            std::thread::sleep(Duration::from_millis(300));
            *shard0_slot.lock().unwrap() = Some(start_shard(0, &shard0_addr, Some(dir.clone())));
        });
        let mut client = Client::connect(&router_addr).expect("connect router");
        let mut ok_count = 0u32;
        let mut typed_errors = 0u32;
        for i in 0..200u32 {
            let cell = &cells[i as usize % cells.len()];
            let id = format!("burst-{i}");
            client.send_line(&map_line(&id, cell)).expect("burst send");
            match client.recv_response() {
                Ok(r) => {
                    assert_eq!(r.id, id, "response delivered to the wrong request");
                    let expected = cell.expected.lock().unwrap();
                    assert_eq!(
                        Some(r.result_text.as_str()),
                        expected.as_deref(),
                        "response bytes must match the no-fault baseline"
                    );
                    ok_count += 1;
                }
                Err(e) => {
                    assert!(
                        matches!(e.kind, ErrorKind::Unavailable | ErrorKind::ShuttingDown),
                        "outage refusals must be typed, got {:?}: {e}",
                        e.kind
                    );
                    if e.kind == ErrorKind::Unavailable {
                        assert!(
                            e.retry_after_ms.is_some(),
                            "unavailable must carry a retry hint"
                        );
                    }
                    typed_errors += 1;
                }
            }
        }
        chaos.join().expect("chaos thread");
        (ok_count, typed_errors)
    });
    // Shard 1 stayed healthy throughout, so at least its half served.
    assert!(ok_count > 0, "healthy shard must keep serving");
    assert!(typed_errors > 0, "the outage must actually have been seen");

    // Convergence: the revived shard's keys must be served again within
    // about one probe interval (the breaker needs one half-open probe).
    let shard0_cell = cells.iter().find(|c| c.owner == 0).expect("shard-0 cell");
    let recovery_start = Instant::now();
    let mut client = Client::connect(&router_addr).expect("connect router");
    loop {
        client
            .send_line(&map_line("recover", shard0_cell))
            .expect("recovery send");
        match client.recv_response() {
            Ok(r) => {
                let expected = shard0_cell.expected.lock().unwrap();
                assert_eq!(Some(r.result_text.as_str()), expected.as_deref());
                break;
            }
            Err(_) => {
                assert!(
                    recovery_start.elapsed() < probe_interval * 3,
                    "router did not converge within a probe interval of the restart"
                );
                std::thread::sleep(Duration::from_millis(10));
            }
        }
    }

    router.initiate_shutdown();
    let _ = router_accept.join();
    if let Some(shard) = shard0_slot.into_inner().unwrap() {
        stop_shard(shard);
    }
    stop_shard(shard1);
    let _ = std::fs::remove_dir_all(&dir);
}

/// Planned mid-frame forward drops are invisible to clients: the router
/// retries on a fresh connection and the daemon discards the torn
/// half-request at EOF, so every response is the baseline bytes.
#[test]
fn mid_frame_forward_drops_are_retried_invisibly() {
    let cells = build_cells();
    let shard0 = start_shard(0, "127.0.0.1:0", None);
    let shard1 = start_shard(1, "127.0.0.1:0", None);
    let router = Router::new(test_router_config(vec![
        shard0.addr.clone(),
        shard1.addr.clone(),
    ]));
    let (router_addr, router_accept) =
        spawn_router(Arc::clone(&router), "127.0.0.1:0").expect("bind router");
    let router_addr = router_addr.to_string();

    // Plan *after* knowing the workload: 120 warm requests plus priming
    // and redirect forwards — drop 8 of the first 150 forwards.
    let plan = FaultPlan::seeded(0xD20B, 150, 0, 0, 8);
    assert_eq!(plan.drop_forwards.len(), 8);
    let _guard = install(plan);

    prime(&router_addr, &cells);
    let mut client = Client::connect(&router_addr).expect("connect router");
    for i in 0..120u32 {
        let cell = &cells[i as usize % cells.len()];
        let id = format!("drop-{i}");
        client.send_line(&map_line(&id, cell)).expect("send");
        let r = client
            .recv_response()
            .unwrap_or_else(|e| panic!("request {i} must survive a dropped forward: {e}"));
        assert_eq!(r.id, id);
        let expected = cell.expected.lock().unwrap();
        assert_eq!(Some(r.result_text.as_str()), expected.as_deref());
    }
    // The drops really happened: the router counted retries.
    let stats = client.stats().expect("router stats").result;
    assert_eq!(stats.get("router").and_then(|v| v.as_bool()), Some(true));
    let retries = stats.get("retries").and_then(Json::as_u64).unwrap_or(0);
    assert!(retries > 0, "planned drops must have forced retries");

    router.initiate_shutdown();
    let _ = router_accept.join();
    stop_shard(shard0);
    stop_shard(shard1);
}

/// A slow-loris upstream (accepts, reads, never answers) must cost a
/// bounded timeout and a typed `unavailable`, and must not affect the
/// healthy shard's traffic.
#[test]
fn slow_loris_shard_times_out_typed_and_leaves_other_shard_healthy() {
    let _guard = install(FaultPlan::default());
    let cells = build_cells();
    let shard0 = start_shard(0, "127.0.0.1:0", None);
    // "Shard 1" is a listener that accepts and then ignores everyone.
    let loris = std::net::TcpListener::bind("127.0.0.1:0").expect("bind loris");
    let loris_addr = loris.local_addr().expect("loris addr").to_string();
    let loris_stop = Arc::new(std::sync::atomic::AtomicBool::new(false));
    let loris_thread = {
        let stop = Arc::clone(&loris_stop);
        loris.set_nonblocking(true).expect("nonblocking loris");
        std::thread::spawn(move || {
            // Park every connection, never answer, until told to stop.
            let mut held = Vec::new();
            while !stop.load(std::sync::atomic::Ordering::SeqCst) {
                match loris.accept() {
                    Ok((stream, _)) => held.push(stream),
                    Err(_) => std::thread::sleep(Duration::from_millis(10)),
                }
            }
            drop(held);
        })
    };

    let router = Router::new(RouterConfig {
        // Exact routing: a shard-1 request must reach the loris without
        // depending on the raw-hash guess.
        parse_arch: true,
        max_attempts: 2,
        upstream_timeout: Duration::from_millis(300),
        ..test_router_config(vec![shard0.addr.clone(), loris_addr])
    });
    let (router_addr, router_accept) =
        spawn_router(Arc::clone(&router), "127.0.0.1:0").expect("bind router");
    let router_addr = router_addr.to_string();

    let shard0_cell = cells.iter().find(|c| c.owner == 0).expect("shard-0 cell");
    let loris_cell = cells.iter().find(|c| c.owner == 1).expect("shard-1 cell");
    let mut client = Client::connect(&router_addr).expect("connect router");

    // Healthy shard first (also establishes its baseline bytes).
    client
        .send_line(&map_line("healthy-0", shard0_cell))
        .expect("send");
    let baseline = client.recv_response().expect("healthy shard answers");

    // The loris shard: bounded, typed failure (2 attempts x 300 ms plus
    // backoff — well under 2 s).
    let start = Instant::now();
    client
        .send_line(&map_line("loris", loris_cell))
        .expect("send");
    let err = client
        .recv_response()
        .expect_err("a never-answering shard cannot produce a response");
    assert_eq!(err.kind, ErrorKind::Unavailable);
    assert!(err.retry_after_ms.is_some());
    assert!(
        start.elapsed() < Duration::from_secs(2),
        "slow-loris timeout must be bounded, took {:?}",
        start.elapsed()
    );

    // Healthy shard unaffected — warm replay, identical bytes, fast.
    let start = Instant::now();
    client
        .send_line(&map_line("healthy-1", shard0_cell))
        .expect("send");
    let replay = client.recv_response().expect("healthy shard still answers");
    assert_eq!(replay.result_text, baseline.result_text);
    assert!(start.elapsed() < Duration::from_secs(1));

    router.initiate_shutdown();
    let _ = router_accept.join();
    stop_shard(shard0);
    loris_stop.store(true, std::sync::atomic::Ordering::SeqCst);
    let _ = loris_thread.join();
}

/// Planned worker panics: the waiter whose solve panicked gets a typed
/// `internal` error, the worker survives its `catch_unwind`, and the
/// very next solve on the same service succeeds.
#[test]
fn planned_worker_panics_answer_typed_and_workers_survive() {
    let plan = FaultPlan {
        panic_solves: vec![0, 2],
        tear_appends: vec![],
        drop_forwards: vec![],
    };
    let _guard = install(plan);
    let service = Service::start(ServiceConfig {
        workers: 2,
        ..ServiceConfig::default()
    });
    let dfg = cgra_dfg::text::print(&cgra_dfg::benchmarks::accum());
    let arch = cgra_arch::text::print(&paper_configs()[3].arch);
    // Distinct seeds: four genuinely distinct solves, so the global
    // solve counter advances once per request.
    let line = |id: &str, seed: u64| {
        format!(
            "{{\"id\":\"{id}\",\"cmd\":\"map\",\"dfg\":{},\"arch\":{},\"ii\":1,\"options\":{{\"seed\":{seed}}}}}",
            cgra_serve::json::s(&dfg),
            cgra_serve::json::s(&arch),
        )
    };
    for (i, planned_panic) in [true, false, true, false].into_iter().enumerate() {
        let raw = service.handle(&line(&format!("p-{i}"), i as u64 + 1));
        match cgra_serve::client::decode_response(&raw) {
            Ok(_) => assert!(!planned_panic, "solve {i} was planned to panic"),
            Err(e) => {
                assert!(planned_panic, "solve {i} failed unplanned: {e}");
                assert_eq!(e.kind, ErrorKind::Internal);
            }
        }
    }
    // Both workers still alive: the two clean solves reached the
    // success counter (panicked ones unwind before it), and one more
    // solve completes promptly.
    assert_eq!(
        service.stats_json().get("solves").and_then(Json::as_u64),
        Some(2)
    );
    let raw = service.handle(&line("p-final", 99));
    cgra_serve::client::decode_response(&raw).expect("workers survived the planned panics");
    service.initiate_shutdown();
    service.join_workers();
}

/// Torn segment tails under a live service: the solve whose append
/// tears still answers OK (persistence is best-effort), the torn record
/// never surfaces on restart, and the next generation re-solves and
/// repairs the tail.
#[test]
fn torn_segment_tail_never_surfaces_across_restart() {
    let dir = std::env::temp_dir().join(format!("cgra-chaos-tear-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let plan = FaultPlan {
        panic_solves: vec![],
        tear_appends: vec![0], // the very first persisted result tears
        drop_forwards: vec![],
    };
    let guard = install(plan);
    let dfg = cgra_dfg::text::print(&cgra_dfg::benchmarks::accum());
    let arch = cgra_arch::text::print(&paper_configs()[3].arch);
    let line = format!(
        "{{\"id\":\"t\",\"cmd\":\"map\",\"dfg\":{},\"arch\":{},\"ii\":1}}",
        cgra_serve::json::s(&dfg),
        cgra_serve::json::s(&arch),
    );

    let first_text = {
        let service = Service::start(ServiceConfig {
            cache_dir: Some(dir.clone()),
            ..ServiceConfig::default()
        });
        let r = cgra_serve::client::decode_response(&service.handle(&line))
            .expect("solve answers OK even though its append tore");
        service.initiate_shutdown();
        service.join_workers();
        r.result_text
    };
    drop(guard); // faults off: the repair generation runs clean

    // Generation 2: the torn record must read as absent — a miss and a
    // clean re-solve with identical bytes, then the repaired tail hits.
    let service = Service::start(ServiceConfig {
        cache_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    });
    let resolved = cgra_serve::client::decode_response(&service.handle(&line)).expect("re-solve");
    assert!(
        !resolved.served.unwrap().cache_hit,
        "a torn record must never be served"
    );
    // Independent solves agree modulo wall-clock fields (byte identity
    // is the *cache's* guarantee; a re-solve re-measures its timings).
    fn normalize_times(doc: &mut Json) {
        match doc {
            Json::Object(pairs) => {
                for (key, value) in pairs {
                    if key.ends_with("_us") {
                        *value = Json::Int(0);
                    } else {
                        normalize_times(value);
                    }
                }
            }
            Json::Array(items) => items.iter_mut().for_each(normalize_times),
            _ => {}
        }
    }
    let mut a = Json::parse(&first_text).expect("first report parses");
    let mut b = Json::parse(&resolved.result_text).expect("re-solve report parses");
    normalize_times(&mut a);
    normalize_times(&mut b);
    assert_eq!(a.to_string(), b.to_string(), "clean re-solve agrees");
    service.initiate_shutdown();
    service.join_workers();

    let service = Service::start(ServiceConfig {
        cache_dir: Some(dir.clone()),
        ..ServiceConfig::default()
    });
    let replay = cgra_serve::client::decode_response(&service.handle(&line)).expect("replay");
    assert!(replay.served.unwrap().cache_hit, "repaired tail must hit");
    assert_eq!(
        replay.result_text, resolved.result_text,
        "the repaired tail replays generation 2's bytes exactly"
    );
    service.initiate_shutdown();
    service.join_workers();
    let _ = std::fs::remove_dir_all(&dir);
}
