//! Differential soundness suite for the presolve pipeline: on a corpus of
//! structured models and a stream of seeded random models, solving with
//! presolve enabled must produce the same verdict and the same optimal
//! objective as solving the raw model — at 1 and at 4 threads — and
//! returned solutions must satisfy the *original* model. A separate test
//! pins the time-budget accounting: a huge probing budget must not let
//! total wall time exceed the `SolverConfig` deadline.

use bilp::{Cmp, LinExpr, Model, Outcome, Solver, SolverConfig};
use cgra_rng::Rng;
use std::time::{Duration, Instant};

fn config(presolve: bool, threads: usize, seed: u64) -> SolverConfig {
    SolverConfig {
        threads,
        seed,
        presolve,
        ..SolverConfig::default()
    }
}

/// Solves `model` with presolve off (reference) and on, at 1 and 4
/// threads, and checks verdict/objective agreement everywhere.
fn check_differential(model: &Model, label: &str) {
    let reference = Solver::with_config(config(false, 1, 0)).solve(model);
    for threads in [1usize, 4] {
        let mut solver = Solver::with_config(config(true, threads, 7));
        let presolved = solver.solve(model);
        match (&reference, &presolved) {
            (Outcome::Infeasible, Outcome::Infeasible) => {}
            (
                Outcome::Optimal { objective: a, .. },
                Outcome::Optimal {
                    objective: b,
                    solution,
                },
            ) => {
                assert_eq!(a, b, "[{label}] threads={threads}: objective mismatch");
                assert_eq!(
                    model.check(|v| solution.value(v)),
                    Ok(()),
                    "[{label}] threads={threads}: expanded solution violates the original model"
                );
                assert_eq!(
                    solution.len(),
                    model.num_vars(),
                    "[{label}] threads={threads}: solution not in original variable space"
                );
            }
            other => panic!("[{label}] threads={threads}: verdict mismatch {other:?}"),
        }
    }
}

fn pigeonhole(n: usize) -> Model {
    let mut m = Model::new();
    let p: Vec<Vec<_>> = (0..n + 1).map(|_| m.new_vars(n)).collect();
    for row in &p {
        m.add_clause(row.iter().map(|v| v.lit()));
    }
    for h in 0..n {
        m.add_at_most_one(p.iter().map(|row| row[h]));
    }
    m
}

fn cycle_cover(n: usize) -> Model {
    let mut m = Model::new();
    let v = m.new_vars(n);
    for i in 0..n {
        m.add_clause([v[i].lit(), v[(i + 1) % n].lit()]);
    }
    m.minimize(LinExpr::sum(v));
    m
}

fn coloring(edges: &[(usize, usize)], nodes: usize, colors: usize) -> Model {
    let mut m = Model::new();
    let x: Vec<Vec<_>> = (0..nodes).map(|_| m.new_vars(colors)).collect();
    for row in &x {
        m.add_exactly_one(row.iter().copied());
    }
    for &(a, b) in edges {
        for (xa, xb) in x[a].clone().into_iter().zip(x[b].clone()) {
            m.add_clause([!xa.lit(), !xb.lit()]);
        }
    }
    m
}

fn weighted_cover() -> Model {
    let mut m = Model::new();
    let v = m.new_vars(5);
    let weights = [3i64, 5, 7, 2, 4];
    for pair in [(0, 1), (1, 2), (2, 3), (3, 4), (4, 0), (0, 2)] {
        m.add_clause([v[pair.0].lit(), v[pair.1].lit()]);
    }
    let mut obj = LinExpr::new();
    for (w, var) in weights.iter().zip(&v) {
        obj.add_term(*w, *var);
    }
    m.minimize(obj);
    m
}

fn equality_chain(n: usize) -> Model {
    let mut m = Model::new();
    let v = m.new_vars(n);
    for w in v.windows(2) {
        // v[i] == v[i+1] via the two implications.
        m.add_implies(w[0].lit(), w[1].lit());
        m.add_implies(w[1].lit(), w[0].lit());
    }
    m.fix(v[0], true);
    m.minimize(LinExpr::sum(v));
    m
}

fn weighted_pb() -> Model {
    let mut m = Model::new();
    let v = m.new_vars(6);
    let mut e = LinExpr::new();
    for (i, var) in v.iter().enumerate() {
        e.add_term(2 + i as i64, *var);
    }
    m.add_le(e, 9);
    let mut obj = LinExpr::new();
    for (i, var) in v.iter().enumerate() {
        obj.add_term(if i % 2 == 0 { -1 } else { 1 }, *var);
    }
    m.minimize(obj);
    m
}

#[test]
fn corpus_verdicts_identical_with_presolve() {
    check_differential(&pigeonhole(5), "pigeonhole-5");
    check_differential(&cycle_cover(11), "cycle-cover-11");
    let k4: Vec<(usize, usize)> = (0..4)
        .flat_map(|a| (a + 1..4).map(move |b| (a, b)))
        .collect();
    check_differential(&coloring(&k4, 4, 3), "k4-3coloring-unsat");
    check_differential(&coloring(&k4, 4, 4), "k4-4coloring-sat");
    check_differential(&weighted_cover(), "weighted-cover");
    check_differential(&equality_chain(8), "equality-chain-8");
    check_differential(&weighted_pb(), "weighted-pb");
}

fn random_model(rng: &mut Rng) -> Model {
    let n_vars = rng.gen_range_inclusive(2..=9);
    let mut m = Model::new();
    let vars = m.new_vars(n_vars);
    let n_constraints = rng.gen_range_inclusive(1..=10);
    for _ in 0..n_constraints {
        let n_terms = rng.gen_range_inclusive(1..=5);
        let mut e = LinExpr::new();
        for _ in 0..n_terms {
            e.add_term(
                rng.gen_i64_inclusive(-4..=4),
                vars[rng.gen_range(0..n_vars)],
            );
        }
        let cmp = match rng.below(3) {
            0 => Cmp::Le,
            1 => Cmp::Ge,
            _ => Cmp::Eq,
        };
        m.add(e, cmp, rng.gen_i64_inclusive(-6..=8));
    }
    if rng.gen_bool(0.5) {
        let mut e = LinExpr::new();
        for _ in 0..rng.gen_range_inclusive(1..=n_vars) {
            e.add_term(
                rng.gen_i64_inclusive(-5..=5),
                vars[rng.gen_range(0..n_vars)],
            );
        }
        m.minimize(e);
    }
    m
}

#[test]
fn random_models_verdicts_identical_with_presolve() {
    let mut rng = Rng::seed_from_u64(0x9E50_1FE5);
    for case in 0..250 {
        let m = random_model(&mut rng);
        check_differential(&m, &format!("random-{case}"));
    }
}

/// Presolve time counts against the solver deadline: even with an
/// effectively unbounded probing budget on a large instance, the 50 ms
/// wall-clock budget must surface as `Unknown` promptly (the same bound
/// PR 1 pins for the search engine itself).
#[test]
fn presolve_time_counts_against_the_deadline() {
    let m = pigeonhole(70); // 4970 vars; exhaustive probing alone would far exceed 50 ms
    for threads in [1usize, 4] {
        let mut s = Solver::with_config(SolverConfig {
            time_limit: Some(Duration::from_millis(50)),
            threads,
            presolve: true,
            presolve_probe_budget: u64::MAX,
            ..SolverConfig::default()
        });
        let start = Instant::now();
        let out = s.solve(&m);
        let elapsed = start.elapsed();
        assert_eq!(out, Outcome::Unknown, "threads={threads}");
        assert!(
            elapsed < Duration::from_millis(250),
            "threads={threads}: 50 ms deadline overshot to {elapsed:?}"
        );
        assert!(
            s.stats().presolve.vars_before > 0,
            "presolve stats should be populated"
        );
    }
}

/// The escape hatch really is bit-for-bit: two sequential solves of the
/// same model with presolve off agree with each other down to the engine
/// counters, and `SolveStats.presolve` stays zeroed.
#[test]
fn presolve_off_path_reports_no_reduction() {
    let m = cycle_cover(9);
    let mut s = Solver::with_config(config(false, 1, 0));
    let out = s.solve(&m);
    assert!(matches!(out, Outcome::Optimal { .. }));
    assert_eq!(s.stats().presolve, bilp::PresolveStats::default());
}
