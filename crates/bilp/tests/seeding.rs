//! Heuristic incumbent seeding: differential tests asserting that
//! probes — valid, useless, or garbage — never change verdicts or
//! proven optima, at every thread count, while valid probes do publish
//! incumbents and the attribution counters tell the truth.

use bilp::{
    HeuristicProbe, IncrementalSolver, IncumbentSource, LinExpr, Model, Outcome, Solver,
    SolverConfig,
};
use std::sync::atomic::AtomicBool;
use std::time::Duration;

/// n+1 pigeons into n holes: UNSAT.
fn pigeonhole(n: usize) -> Model {
    let mut m = Model::new();
    let p: Vec<Vec<_>> = (0..n + 1).map(|_| m.new_vars(n)).collect();
    for row in &p {
        m.add_clause(row.iter().map(|v| v.lit()));
    }
    for h in 0..n {
        m.add_at_most_one(p.iter().map(|row| row[h]));
    }
    m
}

/// Minimum vertex cover of an n-cycle (optimum = ceil(n/2)).
fn cycle_cover(n: usize) -> Model {
    let mut m = Model::new();
    let v = m.new_vars(n);
    for i in 0..n {
        m.add_clause([v[i].lit(), v[(i + 1) % n].lit()]);
    }
    m.minimize(LinExpr::sum(v));
    m
}

/// A probe that always returns the same candidate assignment.
struct Fixed(Vec<bool>);

impl HeuristicProbe for Fixed {
    fn probe(&self, _seed: u64, _stop: &AtomicBool) -> Option<Vec<bool>> {
        Some(self.0.clone())
    }
}

fn config(threads: usize) -> SolverConfig {
    SolverConfig {
        threads,
        ..SolverConfig::default()
    }
}

/// A valid (all-vertices) cover seeds an incumbent of n; the proven
/// optimum must still be exactly what the unseeded solver proves, at
/// every thread count.
#[test]
fn valid_probe_never_changes_the_optimum() {
    let m = cycle_cover(13);
    let unseeded = Solver::new().solve(&m);
    assert_eq!(unseeded.objective(), Some(7));
    let probe = Fixed(vec![true; 13]);
    for threads in [1usize, 2, 4] {
        let mut s = Solver::with_config(config(threads));
        let out = s.solve_with_probe(&m, &probe);
        assert!(
            matches!(out, Outcome::Optimal { .. }),
            "threads={threads}: {out:?}"
        );
        assert_eq!(out.objective(), Some(7), "threads={threads}");
        let solution = out.solution().expect("optimal has a solution");
        assert_eq!(m.check(|v| solution.value(v)), Ok(()));
        let stats = s.stats();
        assert!(stats.probe_workers >= 1, "threads={threads}");
        // The all-true seed is strictly worse than the optimum, so the
        // final incumbent must be attributed to the solver.
        if threads == 1 {
            assert_eq!(stats.probe_incumbents, 1);
            assert_eq!(stats.incumbent_source, Some(IncumbentSource::Solver));
        }
    }
}

/// A probe can never flip an UNSAT instance: whatever it claims, the
/// solver validates candidates against the model and proves
/// infeasibility regardless.
#[test]
fn garbage_probe_cannot_flip_unsat() {
    let m = pigeonhole(5);
    let garbage = Fixed((0..m.num_vars()).map(|i| i % 3 == 0).collect());
    for threads in [1usize, 2] {
        let mut s = Solver::with_config(config(threads));
        let out = s.solve_with_probe(&m, &garbage);
        assert_eq!(out, Outcome::Infeasible, "threads={threads}");
        assert_eq!(s.stats().probe_incumbents, 0, "threads={threads}");
    }
}

/// Invalid candidates (wrong length, constraint-violating) are
/// discarded by validation and publish nothing.
#[test]
fn invalid_probe_candidates_are_rejected() {
    let m = cycle_cover(9);
    for bad in [Fixed(vec![false; 9]), Fixed(vec![true; 4]), Fixed(vec![])] {
        let mut s = Solver::new();
        let out = s.solve_with_probe(&m, &bad);
        assert_eq!(out.objective(), Some(5));
        assert_eq!(s.stats().probe_incumbents, 0);
        assert_eq!(s.stats().incumbent_source, Some(IncumbentSource::Solver));
    }
}

/// Without an objective the first validated probe candidate *is* the
/// answer — the sequential feasibility race returns it directly and
/// attributes the incumbent to the heuristic.
#[test]
fn feasibility_race_returns_validated_probe_solution() {
    let mut m = Model::new();
    let v = m.new_vars(6);
    for i in 0..6 {
        m.add_clause([v[i].lit(), v[(i + 1) % 6].lit()]);
    }
    let probe = Fixed(vec![true; 6]);
    let mut s = Solver::with_config(SolverConfig {
        presolve: false,
        ..SolverConfig::default()
    });
    let out = s.solve_with_probe(&m, &probe);
    let Outcome::Optimal {
        solution,
        objective,
    } = out
    else {
        panic!("expected optimal, got {out:?}");
    };
    assert_eq!(objective, 0);
    assert!((0..6).all(|i| solution.value(v[i])));
    let stats = s.stats();
    assert_eq!(stats.probe_incumbents, 1);
    assert_eq!(stats.incumbent_source, Some(IncumbentSource::Heuristic));
}

/// A probe seeding an *optimal* solution keeps its attribution through
/// the optimising descent: the solver proves the bound but never finds
/// a strictly better incumbent, so the heuristic's solution survives.
#[test]
fn optimal_seed_keeps_heuristic_attribution() {
    // Even-indexed vertices cover the 9-cycle with exactly 5 = optimum.
    let m = cycle_cover(9);
    let seed: Vec<bool> = (0..9).map(|i| i % 2 == 0).collect();
    let mut s = Solver::new();
    let out = s.solve_with_probe(&m, &Fixed(seed));
    assert_eq!(out.objective(), Some(5));
    let stats = s.stats();
    assert_eq!(stats.probe_incumbents, 1);
    assert_eq!(stats.incumbent_source, Some(IncumbentSource::Heuristic));
}

/// `IncrementalSolver::seed_incumbent` accepts exactly the valid,
/// improving candidates and rejects the rest without touching state.
#[test]
fn incremental_seed_incumbent_validates() {
    let m = cycle_cover(9);
    let mut inc = IncrementalSolver::new(&m, SolverConfig::default());
    assert!(!inc.seed_incumbent(&[true; 4]), "wrong length");
    assert!(!inc.seed_incumbent(&[false; 9]), "violates every clause");
    assert!(inc.seed_incumbent(&[true; 9]), "valid cover of 9");
    // A second, better seed improves; an equal-or-worse one is refused.
    let five: Vec<bool> = (0..9).map(|i| i % 2 == 0).collect();
    assert!(inc.seed_incumbent(&five));
    assert!(!inc.seed_incumbent(&[true; 9]), "worse than incumbent");
    assert_eq!(inc.stats().probe_incumbents, 2);
    let first = inc.solve_feasible();
    assert!(first.solution().is_some());
    let out = inc.optimize();
    assert_eq!(out.objective(), Some(5));
    assert_eq!(
        inc.stats().incumbent_source,
        Some(IncumbentSource::Heuristic)
    );
}

/// Racing probe workers in the portfolio never change the verdict, and
/// the deadline still binds with probes attached.
#[test]
fn portfolio_with_probe_respects_deadline_and_verdict() {
    let m = pigeonhole(8);
    let garbage = Fixed((0..m.num_vars()).map(|i| i % 2 == 0).collect());
    let mut s = Solver::with_config(SolverConfig {
        threads: 2,
        probe_workers: 2,
        time_limit: Some(Duration::from_millis(80)),
        ..SolverConfig::default()
    });
    let out = s.solve_with_probe(&m, &garbage);
    // Hard instance, tiny budget: Unknown or a finished Infeasible
    // proof are both acceptable — a probe-created Feasible is not.
    assert!(
        matches!(out, Outcome::Unknown | Outcome::Infeasible),
        "{out:?}"
    );
    assert_eq!(s.stats().probe_workers, 2);
    assert_eq!(s.stats().probe_incumbents, 0);
}

/// A retiring probe (returns `None` immediately) leaves the portfolio
/// to the CDCL workers, which still decide correctly.
#[test]
fn retiring_probe_leaves_cdcl_workers_to_decide() {
    struct Retire;
    impl HeuristicProbe for Retire {
        fn probe(&self, _seed: u64, _stop: &AtomicBool) -> Option<Vec<bool>> {
            None
        }
    }
    let m = cycle_cover(11);
    let mut s = Solver::with_config(config(2));
    let out = s.solve_with_probe(&m, &Retire);
    assert_eq!(out.objective(), Some(6));
    assert_eq!(s.stats().probe_incumbents, 0);
}
