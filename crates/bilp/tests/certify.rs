//! End-to-end certification tests: solve with `certify` enabled and
//! confirm every `Infeasible` verdict carries a machine-checked
//! certificate, that satisfiable and resource-starved solves behave
//! sensibly, and that certificates survive the incremental front-end.

use bilp::{Certificate, IncrementalSolver, LinExpr, Model, Outcome, Solver, SolverConfig};
use std::time::Duration;

/// The pigeonhole principle PHP(n+1, n): n+1 pigeons into n holes, every
/// pigeon placed, at most one pigeon per hole. Unsatisfiable, and hard
/// enough for resolution that the proof is non-trivial.
fn pigeonhole(pigeons: usize, holes: usize) -> Model {
    let mut m = Model::new();
    let mut slot = vec![vec![]; pigeons];
    for p in slot.iter_mut() {
        *p = m.new_vars(holes);
    }
    for row in &slot {
        m.add_ge(LinExpr::sum(row.clone()), 1);
    }
    for h in 0..holes {
        let col: Vec<_> = slot.iter().map(|row| row[h]).collect();
        m.add_le(LinExpr::sum(col), 1);
    }
    m
}

fn certifying(threads: usize) -> Solver {
    Solver::with_config(SolverConfig {
        certify: true,
        threads,
        ..SolverConfig::default()
    })
}

#[test]
fn infeasible_verdict_is_certified() {
    let m = pigeonhole(5, 4);
    let mut solver = certifying(1);
    assert_eq!(solver.solve(&m), Outcome::Infeasible);
    let cert = solver.certificate().expect("certificate present");
    match cert {
        Certificate::Certified { steps, .. } => assert!(*steps > 0),
        other => panic!("expected certified verdict, got {other:?}"),
    }
}

#[test]
fn portfolio_infeasible_verdict_is_certified() {
    let m = pigeonhole(6, 5);
    let mut solver = certifying(4);
    assert_eq!(solver.solve(&m), Outcome::Infeasible);
    assert!(
        solver.certificate().is_some_and(Certificate::is_certified),
        "portfolio certificate: {:?}",
        solver.certificate()
    );
}

#[test]
fn satisfiable_solve_has_no_certificate() {
    let m = pigeonhole(4, 4);
    let mut solver = certifying(1);
    assert!(matches!(solver.solve(&m), Outcome::Optimal { .. }));
    assert!(solver.certificate().is_none());
}

#[test]
fn presolve_on_and_off_both_certify() {
    for presolve in [false, true] {
        let m = pigeonhole(5, 4);
        let mut solver = Solver::with_config(SolverConfig {
            certify: true,
            presolve,
            ..SolverConfig::default()
        });
        assert_eq!(solver.solve(&m), Outcome::Infeasible);
        assert!(
            solver.certificate().is_some_and(Certificate::is_certified),
            "presolve={presolve}: {:?}",
            solver.certificate()
        );
    }
}

#[test]
fn incremental_assumption_infeasibility_is_certified() {
    // x + y >= 1 is satisfiable; assuming ¬x and ¬y makes it infeasible.
    let mut m = Model::new();
    let x = m.new_var();
    let y = m.new_var();
    m.add_ge(LinExpr::sum([x, y]), 1);
    let config = SolverConfig {
        certify: true,
        ..SolverConfig::default()
    };
    let mut inc = IncrementalSolver::new(&m, config);
    assert_eq!(
        inc.solve_under_assumptions(&[!x.lit(), !y.lit()]),
        Outcome::Infeasible
    );
    assert!(
        inc.certificate().is_some_and(Certificate::is_certified),
        "incremental certificate: {:?}",
        inc.certificate()
    );
    // A later feasible query clears the stale certificate.
    assert!(matches!(
        inc.solve_under_assumptions(&[x.lit()]),
        Outcome::Feasible { .. } | Outcome::Optimal { .. }
    ));
    assert!(inc.certificate().is_none());
}

#[test]
fn mem_limit_terminates_cleanly() {
    // A tight memory cap must produce a clean Unknown/best-found exit,
    // never an abort. PHP(8,7) generates plenty of learnt clauses.
    let m = pigeonhole(8, 7);
    let mut solver = Solver::with_config(SolverConfig {
        mem_limit: Some(64 << 10),
        time_limit: Some(Duration::from_secs(10)),
        ..SolverConfig::default()
    });
    let out = solver.solve(&m);
    assert!(
        matches!(out, Outcome::Infeasible | Outcome::Unknown),
        "unexpected outcome {out:?}"
    );
}

#[test]
fn zero_time_budget_yields_unchecked_certificate() {
    // A replay whose budget expires before the proof is found must
    // degrade to Unchecked, never hang or panic. PHP(8,7) is far too
    // hard to refute before the first deadline poll.
    let m = pigeonhole(8, 7);
    let cfg = SolverConfig {
        certify: true,
        time_limit: Some(Duration::ZERO),
        ..SolverConfig::default()
    };
    let cert = bilp::certify_infeasibility(&m, &[], &[], &cfg);
    assert!(
        matches!(cert, Certificate::Unchecked { .. }),
        "expected unchecked under zero budget, got {cert:?}"
    );
}
