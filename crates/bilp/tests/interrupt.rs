//! External cooperative-cancellation tests: the `set_interrupt` hook
//! used by the serving layer for graceful shutdown and admission
//! control. An interrupted solve must come back promptly with a clean
//! `Unknown` (or best-found `Feasible`), on both the sequential and the
//! portfolio path, and the portfolio's internal stop flag must never
//! leak back into the caller's flag.

// Column-index loops over 2-D incidence structures read clearest as-is.
#![allow(clippy::needless_range_loop)]

use bilp::{IncrementalSolver, Model, Outcome, Solver, SolverConfig};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// n+1 pigeons into n holes: UNSAT, with proof cost growing steeply in n.
/// Large enough to keep any engine busy for far longer than the test's
/// cancellation window.
fn pigeonhole(n: usize) -> Model {
    let mut m = Model::new();
    let p: Vec<Vec<_>> = (0..n + 1).map(|_| m.new_vars(n)).collect();
    for row in &p {
        m.add_clause(row.iter().map(|v| v.lit()));
    }
    for h in 0..n {
        m.add_at_most_one((0..n + 1).map(|i| p[i][h]));
    }
    m
}

#[test]
fn preset_flag_stops_sequential_solve_immediately() {
    let m = pigeonhole(12);
    let flag = Arc::new(AtomicBool::new(true));
    let mut solver = Solver::new();
    solver.set_interrupt(Arc::clone(&flag));
    let start = Instant::now();
    let out = solver.solve(&m);
    assert_eq!(out, Outcome::Unknown);
    assert!(
        start.elapsed() < Duration::from_secs(5),
        "preset interrupt should stop the solve at the first budget poll"
    );
}

#[test]
fn mid_flight_interrupt_stops_sequential_solve() {
    let m = pigeonhole(12);
    let flag = Arc::new(AtomicBool::new(false));
    let canceller = {
        let flag = Arc::clone(&flag);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(100));
            flag.store(true, Ordering::SeqCst);
        })
    };
    let mut solver = Solver::new();
    solver.set_interrupt(Arc::clone(&flag));
    let start = Instant::now();
    let out = solver.solve(&m);
    canceller.join().unwrap();
    assert_eq!(out, Outcome::Unknown);
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "interrupt should cut a solve that would otherwise run much longer"
    );
}

#[test]
fn mid_flight_interrupt_stops_portfolio_solve() {
    let m = pigeonhole(12);
    let flag = Arc::new(AtomicBool::new(false));
    let canceller = {
        let flag = Arc::clone(&flag);
        std::thread::spawn(move || {
            std::thread::sleep(Duration::from_millis(100));
            flag.store(true, Ordering::SeqCst);
        })
    };
    let mut solver = Solver::with_config(SolverConfig {
        threads: 4,
        ..SolverConfig::default()
    });
    solver.set_interrupt(Arc::clone(&flag));
    let start = Instant::now();
    let out = solver.solve(&m);
    canceller.join().unwrap();
    assert_eq!(out, Outcome::Unknown);
    assert!(
        start.elapsed() < Duration::from_secs(30),
        "interrupt must relay into every portfolio worker"
    );
}

#[test]
fn portfolio_verdict_does_not_set_callers_flag() {
    // An easy SAT model: the race finishes on its own. The internal stop
    // flag fires to cancel the losers; the caller's flag must stay clear.
    let mut m = Model::new();
    let vs = m.new_vars(6);
    m.add_clause(vs.iter().map(|v| v.lit()));
    let flag = Arc::new(AtomicBool::new(false));
    let mut solver = Solver::with_config(SolverConfig {
        threads: 4,
        ..SolverConfig::default()
    });
    solver.set_interrupt(Arc::clone(&flag));
    let out = solver.solve(&m);
    assert!(out.solution().is_some());
    assert!(
        !flag.load(Ordering::SeqCst),
        "the portfolio's internal cancellation must not leak into the external flag"
    );
}

#[test]
fn interrupt_stops_incremental_solver() {
    let m = pigeonhole(12);
    let flag = Arc::new(AtomicBool::new(true));
    let mut solver = IncrementalSolver::new(&m, SolverConfig::default());
    solver.set_interrupt(Arc::clone(&flag));
    let start = Instant::now();
    let out = solver.solve_feasible();
    assert_eq!(out, Outcome::Unknown);
    assert!(start.elapsed() < Duration::from_secs(5));

    // Clearing the flag makes the same persistent engine usable again.
    flag.store(false, Ordering::SeqCst);
    let small = {
        let mut m = Model::new();
        let vs = m.new_vars(3);
        m.add_clause(vs.iter().map(|v| v.lit()));
        m
    };
    let mut fresh = IncrementalSolver::new(&small, SolverConfig::default());
    fresh.set_interrupt(Arc::clone(&flag));
    assert!(fresh.solve_feasible().solution().is_some());
}

#[test]
fn uninterrupted_solver_still_decides() {
    // Regression guard: installing a never-fired flag must not change
    // verdicts.
    let m = pigeonhole(4);
    let flag = Arc::new(AtomicBool::new(false));
    let mut solver = Solver::new();
    solver.set_interrupt(flag);
    assert_eq!(solver.solve(&m), Outcome::Infeasible);
}
