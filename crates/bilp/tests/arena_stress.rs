//! Arena/GC stress suite: drive the CDCL engine through adversarial
//! interleavings of bounded search, forced learnt-database reductions
//! (each one a compacting arena GC) and forced inprocessing passes,
//! checking the deep structural invariants after every step and the
//! final verdict against exhaustive enumeration.
//!
//! The point is to hit the arena paths a normal solve schedules rarely
//! and never back-to-back: GC immediately after GC, inprocessing on a
//! freshly compacted arena, reduction with an empty learnt database,
//! search resuming on relocated clauses. `Engine::debug_check_invariants`
//! re-derives the arena tiling, the two-watches-per-live-clause
//! property, blocker membership and trail/assignment agreement from
//! scratch, so any corruption those interleavings introduce fails the
//! step that caused it rather than a distant later solve.

use bilp::brute::{solve_exhaustive, BruteOutcome};
use bilp::{normalize, Budget, Engine, LinExpr, Model, SatResult};

/// Deterministic xorshift64* generator — the suite must replay
/// identically from its printed seed.
struct Rng(u64);

impl Rng {
    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n
    }
}

fn engine_from(m: &Model) -> Engine {
    let mut e = Engine::new(m.num_vars());
    for c in m.constraints() {
        for nc in normalize(c) {
            e.add_norm(nc);
        }
    }
    e
}

/// A random mixed model: 3-SAT-style clauses plus a few cardinality
/// rows, small enough for exhaustive enumeration.
fn random_model(rng: &mut Rng) -> Model {
    let num_vars = 8 + rng.below(7) as usize; // 8..=14
    let mut m = Model::new();
    let vars = m.new_vars(num_vars);
    let clauses = num_vars * (2 + rng.below(3) as usize);
    for _ in 0..clauses {
        let len = 2 + rng.below(3) as usize;
        let mut lits = Vec::with_capacity(len);
        for _ in 0..len {
            let v = vars[rng.below(num_vars as u64) as usize];
            lits.push(if rng.below(2) == 0 { v.lit() } else { !v.lit() });
        }
        m.add_clause(lits);
    }
    // A couple of cardinality rows so normalization emits counting
    // constraints, not just clauses.
    for _ in 0..2 {
        let k = 3 + rng.below(3) as usize;
        let group: Vec<_> = (0..k)
            .map(|_| vars[rng.below(num_vars as u64) as usize])
            .collect();
        if rng.below(2) == 0 {
            m.add_le(LinExpr::sum(group), 1);
        } else {
            m.add_ge(LinExpr::sum(group), 1);
        }
    }
    m
}

/// Checks invariants, panicking with the violating seed and step.
fn check(e: &Engine, seed: u64, step: usize, context: &str) {
    if let Err(msg) = e.debug_check_invariants() {
        panic!("seed {seed} step {step} after {context}: {msg}");
    }
}

/// Runs one adversarial interleave to a final verdict: bounded search
/// slices with forced reductions/inprocessing between them, invariants
/// checked after every operation. Returns `None` when the engine was
/// already unsatisfiable at load.
fn interleaved_solve(
    e: &mut Engine,
    rng: &mut Rng,
    seed: u64,
    slice_conflicts: u64,
) -> Option<SatResult> {
    if !e.is_ok() {
        return None;
    }
    for step in 0..10_000 {
        match rng.below(8) {
            0 => {
                e.debug_force_reduce();
                check(e, seed, step, "forced reduce");
            }
            1 => {
                // Back-to-back GC: the second compaction must cope with
                // an arena the first one just rewrote.
                e.debug_force_reduce();
                e.debug_force_reduce();
                check(e, seed, step, "double forced reduce");
            }
            2 => {
                if !e.debug_force_inprocess() {
                    check(e, seed, step, "inprocess proving unsat");
                    return Some(SatResult::Unsat);
                }
                check(e, seed, step, "forced inprocess");
            }
            _ => {
                let budget = Budget {
                    deadline: None,
                    conflict_limit: Some(1 + rng.below(slice_conflicts)),
                };
                let result = e.solve(budget);
                check(e, seed, step, "bounded solve");
                if result != SatResult::Unknown {
                    return Some(result);
                }
            }
        }
    }
    panic!("seed {seed}: interleave did not converge in 10k steps");
}

#[test]
fn random_interleaves_match_exhaustive_verdicts() {
    for seed in 1..=40u64 {
        let mut rng = Rng(seed.wrapping_mul(0x9e37_79b9_7f4a_7c15));
        let model = random_model(&mut rng);
        let expected = matches!(solve_exhaustive(&model), BruteOutcome::Optimal { .. });
        let mut e = engine_from(&model);
        let verdict = match interleaved_solve(&mut e, &mut rng, seed, 16) {
            None => false, // conflicting at load: only correct if UNSAT
            Some(SatResult::Sat) => {
                // A SAT claim must come with a genuinely satisfying
                // assignment, not just a consistent trail.
                assert_eq!(
                    model.check(|v| e.model_value(v)),
                    Ok(()),
                    "seed {seed}: claimed model violates a constraint"
                );
                true
            }
            Some(SatResult::Unsat) => false,
            Some(SatResult::Unknown) => unreachable!(),
        };
        assert_eq!(
            verdict, expected,
            "seed {seed}: engine said sat={verdict}, enumeration says sat={expected}"
        );
    }
}

/// Pigeonhole: `pigeons` items into `holes` slots, each slot at most
/// one item — unsatisfiable when `pigeons > holes`, and famously
/// conflict-dense, so the learnt database grows fast enough for forced
/// reductions to have real work (and real garbage) every time.
fn pigeonhole(pigeons: usize, holes: usize) -> Model {
    let mut m = Model::new();
    let mut slot = vec![vec![]; pigeons];
    for p in slot.iter_mut() {
        *p = m.new_vars(holes);
    }
    for row in &slot {
        m.add_ge(LinExpr::sum(row.clone()), 1);
    }
    for h in 0..holes {
        let col: Vec<_> = slot.iter().map(|row| row[h]).collect();
        m.add_le(LinExpr::sum(col), 1);
    }
    m
}

#[test]
fn conflict_dense_churn_survives_repeated_gc() {
    let seed = 0xc6ca_5eed;
    let mut rng = Rng(seed);
    let model = pigeonhole(6, 5);
    let mut e = engine_from(&model);
    let verdict = interleaved_solve(&mut e, &mut rng, seed, 128).expect("loads cleanly");
    assert_eq!(verdict, SatResult::Unsat, "pigeonhole 6/5 is unsat");
    let stats = e.stats();
    assert!(
        stats.gc_runs >= 2,
        "forced reductions should have compacted the arena (gc_runs = {})",
        stats.gc_runs
    );
    assert!(stats.conflicts > 100, "expected a conflict-dense run");
}
