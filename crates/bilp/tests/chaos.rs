//! Chaos tests: deliberately panic portfolio workers and assert the
//! race still reaches the correct — and certified — verdict, or
//! degrades to the single-threaded fallback when every worker dies.
//!
//! The injection hook is process-global, so all tests that touch it run
//! inside one `#[test]` body, restoring the hook between scenarios.

use bilp::portfolio::{CHAOS_PANIC_ALL, CHAOS_PANIC_WORKER};
use bilp::{Certificate, HeuristicProbe, LinExpr, Model, Outcome, Solver, SolverConfig};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};

fn pigeonhole(pigeons: usize, holes: usize) -> Model {
    let mut m = Model::new();
    let mut slot = vec![vec![]; pigeons];
    for p in slot.iter_mut() {
        *p = m.new_vars(holes);
    }
    for row in &slot {
        m.add_ge(LinExpr::sum(row.clone()), 1);
    }
    for h in 0..holes {
        let col: Vec<_> = slot.iter().map(|row| row[h]).collect();
        m.add_le(LinExpr::sum(col), 1);
    }
    m
}

fn set_cover() -> (Model, i64) {
    // Minimum set cover with optimum 2: sets {a,b}, {c,d}, {a,c}, {b,d}.
    let mut m = Model::new();
    let s = m.new_vars(4);
    m.add_ge(LinExpr::sum([s[0], s[2]]), 1); // element a
    m.add_ge(LinExpr::sum([s[0], s[3]]), 1); // element b
    m.add_ge(LinExpr::sum([s[1], s[2]]), 1); // element c
    m.add_ge(LinExpr::sum([s[1], s[3]]), 1); // element d
    m.minimize(LinExpr::sum(s));
    (m, 2)
}

fn solver(threads: usize) -> Solver {
    Solver::with_config(SolverConfig {
        threads,
        certify: true,
        ..SolverConfig::default()
    })
}

/// Quiet panic hook that swallows the expected chaos-injection messages
/// but forwards anything else to the default hook.
fn install_quiet_hook() {
    let default = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        let payload = info
            .payload()
            .downcast_ref::<String>()
            .map(String::as_str)
            .or_else(|| info.payload().downcast_ref::<&str>().copied())
            .unwrap_or("");
        if !payload.contains("chaos injection") {
            default(info);
        }
    }));
}

#[test]
fn chaos_panics_do_not_change_verdicts() {
    install_quiet_hook();

    // --- One worker dies: infeasibility still proven and certified. ---
    CHAOS_PANIC_WORKER.store(1, Ordering::SeqCst);
    let m = pigeonhole(5, 4);
    let mut s = solver(4);
    assert_eq!(s.solve(&m), Outcome::Infeasible);
    assert!(
        s.certificate().is_some_and(Certificate::is_certified),
        "certificate after worker panic: {:?}",
        s.certificate()
    );
    assert_eq!(s.stats().worker_panics, 1);

    // --- One worker dies mid-optimisation: optimum unchanged. ---
    CHAOS_PANIC_WORKER.store(2, Ordering::SeqCst);
    let (m, best) = set_cover();
    let mut s = solver(4);
    match s.solve(&m) {
        Outcome::Optimal { objective, .. } => assert_eq!(objective, best),
        other => panic!("unexpected {other:?}"),
    }

    // --- Every worker dies: degrade to the single-thread fallback. ---
    CHAOS_PANIC_WORKER.store(CHAOS_PANIC_ALL, Ordering::SeqCst);
    let m = pigeonhole(5, 4);
    let mut s = solver(3);
    assert_eq!(s.solve(&m), Outcome::Infeasible);
    assert!(
        s.certificate().is_some_and(Certificate::is_certified),
        "certificate after all-dead fallback: {:?}",
        s.certificate()
    );
    assert_eq!(s.stats().worker_panics, 3);

    // --- All dead on a satisfiable model: fallback still solves it. ---
    let (m, best) = set_cover();
    let mut s = solver(3);
    match s.solve(&m) {
        Outcome::Optimal { objective, .. } => assert_eq!(objective, best),
        other => panic!("unexpected {other:?}"),
    }

    // Restore: later tests in this process must not inherit injection.
    CHAOS_PANIC_WORKER.store(usize::MAX, Ordering::SeqCst);

    // --- Injection off: clean portfolio run, zero panics recorded. ---
    let m = pigeonhole(5, 4);
    let mut s = solver(4);
    assert_eq!(s.solve(&m), Outcome::Infeasible);
    assert_eq!(s.stats().worker_panics, 0);
}

/// A probe that keeps publishing deterministic garbage — wrong lengths,
/// empty vectors, constraint-violating assignments — as fast as the
/// portfolio will take it.
struct GarbageHose {
    num_vars: usize,
    calls: AtomicU64,
}

impl HeuristicProbe for GarbageHose {
    fn probe(&self, seed: u64, _stop: &AtomicBool) -> Option<Vec<bool>> {
        let call = self.calls.fetch_add(1, Ordering::Relaxed);
        let mut x = seed.wrapping_add(call).wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1;
        let mut next = || {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        Some(match call % 4 {
            0 => Vec::new(),
            1 => (0..self.num_vars + 3).map(|_| next() & 1 == 1).collect(),
            2 => vec![false; self.num_vars],
            _ => (0..self.num_vars).map(|_| next() & 1 == 1).collect(),
        })
    }
}

/// Probe workers flooding the portfolio with invalid candidates must
/// never corrupt a verdict, an optimum, or a certificate: validation
/// sits between the probe and the shared incumbent.
#[test]
fn garbage_probe_flood_cannot_corrupt_the_race() {
    // UNSAT: infeasibility still proven and certified under the flood.
    let m = pigeonhole(5, 4);
    let probe = GarbageHose {
        num_vars: m.num_vars(),
        calls: AtomicU64::new(0),
    };
    let mut s = solver(2);
    assert_eq!(s.solve_with_probe(&m, &probe), Outcome::Infeasible);
    assert!(
        s.certificate().is_some_and(Certificate::is_certified),
        "certificate under probe flood: {:?}",
        s.certificate()
    );
    assert!(probe.calls.load(Ordering::Relaxed) >= 1, "probe never ran");

    // SAT with an objective: the all-false and random candidates are
    // rejected or dominated; the proven optimum is unchanged.
    let (m, best) = set_cover();
    let probe = GarbageHose {
        num_vars: m.num_vars(),
        calls: AtomicU64::new(0),
    };
    let mut s = solver(2);
    match s.solve_with_probe(&m, &probe) {
        Outcome::Optimal {
            objective,
            solution,
        } => {
            assert_eq!(objective, best);
            assert_eq!(m.check(|v| solution.value(v)), Ok(()));
        }
        other => panic!("unexpected {other:?}"),
    }
}
