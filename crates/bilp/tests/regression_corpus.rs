//! A small corpus of classic 0-1 ILP instances with known answers,
//! exercised across every engine feature combination — a regression net
//! for the search core.

// Column-index loops over 2-D incidence structures read clearest as-is.
#![allow(clippy::needless_range_loop)]

use bilp::{EngineFeatures, LinExpr, Model, Outcome, Solver, SolverConfig};

fn all_feature_variants() -> Vec<EngineFeatures> {
    let mut out = Vec::new();
    for vsids in [true, false] {
        for phase_saving in [true, false] {
            for minimization in [true, false] {
                for restarts in [true, false] {
                    out.push(EngineFeatures {
                        vsids,
                        phase_saving,
                        minimization,
                        restarts,
                        ..EngineFeatures::default()
                    });
                }
            }
        }
    }
    out
}

fn solve_with(model: &Model, features: EngineFeatures) -> Outcome {
    Solver::with_config(SolverConfig {
        features,
        ..SolverConfig::default()
    })
    .solve(model)
}

/// Pigeonhole: n+1 pigeons, n holes — UNSAT for every feature mix.
fn pigeonhole(n: usize) -> Model {
    let mut m = Model::new();
    let p: Vec<Vec<_>> = (0..n + 1).map(|_| m.new_vars(n)).collect();
    for row in &p {
        m.add_clause(row.iter().map(|v| v.lit()));
    }
    for h in 0..n {
        m.add_at_most_one((0..n + 1).map(|i| p[i][h]));
    }
    m
}

#[test]
fn pigeonhole_unsat_under_all_features() {
    let m = pigeonhole(5);
    for f in all_feature_variants() {
        assert_eq!(solve_with(&m, f), Outcome::Infeasible, "features {f:?}");
    }
}

/// Minimum vertex cover of a 5-cycle is 3.
#[test]
fn five_cycle_vertex_cover() {
    let mut m = Model::new();
    let v = m.new_vars(5);
    for i in 0..5 {
        m.add_clause([v[i].lit(), v[(i + 1) % 5].lit()]);
    }
    m.minimize(LinExpr::sum(v));
    for f in all_feature_variants() {
        let out = solve_with(&m, f);
        assert_eq!(out.objective(), Some(3), "features {f:?}");
    }
}

/// 3-coloring of K3 is SAT; of K4 is UNSAT.
#[test]
fn graph_coloring() {
    let complete = |n: usize| -> Model {
        let mut m = Model::new();
        let color: Vec<Vec<_>> = (0..n).map(|_| m.new_vars(3)).collect();
        for row in &color {
            m.add_exactly_one(row.iter().copied());
        }
        for u in 0..n {
            for w in u + 1..n {
                for c in 0..3 {
                    m.add_clause([!color[u][c].lit(), !color[w][c].lit()]);
                }
            }
        }
        m
    };
    for f in all_feature_variants() {
        assert!(
            matches!(solve_with(&complete(3), f), Outcome::Optimal { .. }),
            "K3 features {f:?}"
        );
        assert_eq!(
            solve_with(&complete(4), f),
            Outcome::Infeasible,
            "K4 features {f:?}"
        );
    }
}

/// Weighted knapsack-style cover: pick items with weight >= 10 at minimum
/// total cost. Items (weight, cost): (6,5), (5,4), (4,3), (3,1).
/// Optimum: {6,5} cost 9? {6,4} cost 8 weight 10 — yes, 8.
#[test]
fn weighted_cover_optimum() {
    let mut m = Model::new();
    let items = [(6i64, 5i64), (5, 4), (4, 3), (3, 1)];
    let vars = m.new_vars(items.len());
    let mut weight = LinExpr::new();
    let mut cost = LinExpr::new();
    for (v, &(w, c)) in vars.iter().zip(&items) {
        weight.add_term(w, *v);
        cost.add_term(c, *v);
    }
    m.add_ge(weight, 10);
    m.minimize(cost);
    for f in all_feature_variants() {
        assert_eq!(solve_with(&m, f).objective(), Some(8), "features {f:?}");
    }
}

/// Equality chains propagate fully at the root: x0 = x1 = ... = x9, x0
/// fixed true.
#[test]
fn equality_chain_propagates() {
    let mut m = Model::new();
    let v = m.new_vars(10);
    for w in v.windows(2) {
        let mut e = LinExpr::new();
        e.add_term(1, w[0]);
        e.add_term(-1, w[1]);
        m.add_eq(e, 0);
    }
    m.fix(v[0], true);
    let out = Solver::new().solve(&m);
    let solution = out.solution().expect("sat");
    assert!(v.iter().all(|x| solution.value(*x)));
}

/// Big-coefficient pseudo-Boolean propagation: 7a + 7b + 2c <= 8 admits
/// only one true variable (7+2 already exceeds the bound).
#[test]
fn weighted_pb_mutual_exclusion() {
    let mut m = Model::new();
    let a = m.new_var();
    let b = m.new_var();
    let c = m.new_var();
    let mut e = LinExpr::new();
    e.add_term(7, a);
    e.add_term(7, b);
    e.add_term(2, c);
    m.add_le(e, 8);
    // Maximize a + b + c (minimize the negation): any pair exceeds the
    // bound (7+7, 7+2), so the optimum picks exactly one -> objective -1.
    let mut obj = LinExpr::new();
    obj.add_term(-1, a);
    obj.add_term(-1, b);
    obj.add_term(-1, c);
    m.minimize(obj);
    for f in all_feature_variants() {
        assert_eq!(solve_with(&m, f).objective(), Some(-1), "features {f:?}");
    }
}

/// An optimisation run that needs several incumbent improvements.
#[test]
fn descending_incumbents() {
    let mut m = Model::new();
    let v = m.new_vars(12);
    // Cover: each consecutive triple needs at least one chosen.
    for w in v.windows(3) {
        m.add_clause(w.iter().map(|x| x.lit()));
    }
    m.minimize(LinExpr::sum(v.clone()));
    let mut solver = Solver::new();
    let out = solver.solve(&m);
    // 12 positions, triples starting 0..=9: optimal picks indices 2,5,8
    // and one more for the window 9,10,11 -> 4.
    assert_eq!(out.objective(), Some(4));
    assert!(solver.stats().incumbents >= 1);
}
