//! Portfolio-solver integration tests: determinism of the sequential
//! path, agreement across thread counts, deadline responsiveness with
//! the amortised budget polling, and UNSAT race cancellation.

// Column-index loops over 2-D incidence structures read clearest as-is.
#![allow(clippy::needless_range_loop)]

use bilp::{ClauseExchange, LinExpr, Lit, Model, Outcome, Solver, SolverConfig};
use std::time::{Duration, Instant};

/// n+1 pigeons into n holes: UNSAT, with proof cost growing steeply in n.
fn pigeonhole(n: usize) -> Model {
    let mut m = Model::new();
    let p: Vec<Vec<_>> = (0..n + 1).map(|_| m.new_vars(n)).collect();
    for row in &p {
        m.add_clause(row.iter().map(|v| v.lit()));
    }
    for h in 0..n {
        m.add_at_most_one((0..n + 1).map(|i| p[i][h]));
    }
    m
}

/// Minimum vertex cover of an n-cycle (optimum = ceil(n/2)).
fn cycle_cover(n: usize) -> Model {
    let mut m = Model::new();
    let v = m.new_vars(n);
    for i in 0..n {
        m.add_clause([v[i].lit(), v[(i + 1) % n].lit()]);
    }
    m.minimize(LinExpr::sum(v));
    m
}

/// `threads = 1` takes the classic sequential code path, so two runs —
/// and a run against the default config — must agree bit-for-bit, down
/// to the engine counters.
#[test]
fn threads_one_is_bit_for_bit_sequential() {
    let m = cycle_cover(11);
    let mut default_solver = Solver::new();
    let default_out = default_solver.solve(&m);
    let mut one_thread = Solver::with_config(SolverConfig {
        threads: 1,
        ..SolverConfig::default()
    });
    let one_out = one_thread.solve(&m);
    assert_eq!(default_out, one_out);
    let (a, b) = (default_solver.stats(), one_thread.stats());
    assert_eq!(a.engine.conflicts, b.engine.conflicts);
    assert_eq!(a.engine.decisions, b.engine.decisions);
    assert_eq!(a.engine.propagations, b.engine.propagations);
    assert_eq!(a.incumbents, b.incumbents);
    assert_eq!(a.workers, 1);
    assert_eq!(b.workers, 1);
}

/// Optimal objective values must be identical at every thread count;
/// which optimal *solution* is returned may differ.
#[test]
fn portfolio_objective_matches_sequential() {
    let m = cycle_cover(13);
    let sequential = Solver::new().solve(&m);
    assert_eq!(sequential.objective(), Some(7));
    for threads in [2usize, 4] {
        let mut s = Solver::with_config(SolverConfig {
            threads,
            ..SolverConfig::default()
        });
        let out = s.solve(&m);
        assert!(
            matches!(out, Outcome::Optimal { .. }),
            "threads={threads}: {out:?}"
        );
        assert_eq!(out.objective(), Some(7), "threads={threads}");
        let solution = out.solution().expect("optimal has a solution");
        assert_eq!(m.check(|v| solution.value(v)), Ok(()));
        assert_eq!(s.stats().workers, threads as u32);
    }
}

/// The 50 ms deadline must surface as `Unknown` promptly. Budget checks
/// are amortised to every ~1024 propagations/conflicts, which costs
/// microseconds per poll — the bound here is ~2x the deadline plus
/// scheduler margin, far above any legitimate overshoot.
#[test]
fn deadline_returns_unknown_within_twice_the_budget() {
    let m = pigeonhole(10);
    for threads in [1usize, 4] {
        let mut s = Solver::with_config(SolverConfig {
            time_limit: Some(Duration::from_millis(50)),
            threads,
            ..SolverConfig::default()
        });
        let start = Instant::now();
        let out = s.solve(&m);
        let elapsed = start.elapsed();
        assert_eq!(out, Outcome::Unknown, "threads={threads}");
        assert!(
            elapsed < Duration::from_millis(200),
            "threads={threads}: 50 ms deadline overshot to {elapsed:?}"
        );
    }
}

/// An UNSAT race: the first worker to finish its infeasibility proof
/// must cancel the rest, and the verdict must be attributed.
#[test]
fn unsat_race_cancels_and_attributes_winner() {
    let m = pigeonhole(6);
    let mut s = Solver::with_config(SolverConfig {
        threads: 4,
        ..SolverConfig::default()
    });
    let out = s.solve(&m);
    assert_eq!(out, Outcome::Infeasible);
    let stats = s.stats();
    assert_eq!(stats.workers, 4);
    assert!(stats.winner.is_some(), "decisive worker not attributed");
    // Aggregated engine counters must include every worker's effort —
    // at minimum the winner's full UNSAT proof.
    assert!(stats.engine.conflicts > 0);
}

/// Clause sharing respects objective-bound tags: a clause learnt under a
/// tighter bound is only imported by workers whose own bound is at
/// least as tight.
#[test]
fn clause_exchange_bound_tags() {
    let mut source = Model::new();
    let v = source.new_vars(4);
    let exchange = ClauseExchange::new();
    let free = [v[0].lit()];
    let bounded = [v[1].lit(), v[2].lit()];
    let tight = [v[2].lit(), v[3].lit()];
    assert!(exchange.publish(0, &free, 1, i64::MAX)); // bound-free fact
    assert!(exchange.publish(0, &bounded, 2, 5)); // learnt under obj <= 5
    assert!(exchange.publish(0, &tight, 2, -3)); // learnt under obj <= -3
    assert_eq!(exchange.len(), 3);

    // A worker at bound 5 (or tighter) may import tags >= its bound.
    let mut cursor = 0;
    let mut seen: Vec<Vec<Lit>> = Vec::new();
    exchange.import_since(&mut cursor, 5, 1, |lits, _| seen.push(lits.to_vec()));
    assert_eq!(seen, vec![free.to_vec(), bounded.to_vec()]);
    assert_eq!(cursor, 3);

    // A bound-free worker only gets bound-free facts.
    let mut cursor = 0;
    let mut seen = Vec::new();
    exchange.import_since(&mut cursor, i64::MAX, 1, |lits, _| seen.push(lits.to_vec()));
    assert_eq!(seen, vec![free.to_vec()]);

    // A very tight bound entails everything published.
    let mut cursor = 0;
    let mut seen = Vec::new();
    exchange.import_since(&mut cursor, -10, 1, |lits, _| seen.push(lits.to_vec()));
    assert_eq!(seen.len(), 3);
}

/// A worker never re-imports its own clauses, and the bounded pool
/// evicts oldest-first while cursors stay consistent.
#[test]
fn clause_exchange_self_skip_and_eviction() {
    let mut source = Model::new();
    let v = source.new_vars(8);
    let exchange = ClauseExchange::with_capacity(4);
    for (i, var) in v.iter().enumerate() {
        let worker = i % 2;
        assert!(exchange.publish(worker, &[var.lit()], 1, i64::MAX));
    }
    // 8 published into capacity 4: the first 4 were evicted, but len()
    // stays monotone so late-started cursors are well-defined.
    assert_eq!(exchange.len(), 8);

    // Worker 0 sees only worker 1's surviving clauses (odd indices >= 4).
    let mut cursor = 0;
    let mut seen = Vec::new();
    exchange.import_since(&mut cursor, i64::MAX, 0, |lits, _| seen.push(lits[0]));
    assert_eq!(seen, vec![v[5].lit(), v[7].lit()]);
    assert_eq!(cursor, 8);

    // The caught-up cursor imports nothing further until new publishes.
    let mut count = 0;
    exchange.import_since(&mut cursor, i64::MAX, 0, |_, _| count += 1);
    assert_eq!(count, 0);
    assert!(exchange.publish(1, &[v[0].lit(), v[1].lit()], 2, i64::MAX));
    exchange.import_since(&mut cursor, i64::MAX, 0, |lits, _| count += lits.len());
    assert_eq!(count, 2);
}
