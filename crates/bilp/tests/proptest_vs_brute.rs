//! Property tests: the CDCL branch-and-bound solver must agree with the
//! exhaustive reference solver on feasibility and optimal objective value
//! for arbitrary small 0-1 ILPs.
//!
//! The random-model envelope matches the original proptest strategies
//! (2..=9 vars, 1..=10 constraints of 1..=5 terms with coefficients
//! -4..=4, rhs -6..=8, optional objective with coefficients -5..=5) but
//! is driven by the in-repo seeded generator so the suite needs no
//! registry dependencies and every failure reproduces from its case
//! index.

use bilp::brute::{solve_exhaustive, BruteOutcome};
use bilp::{Cmp, LinExpr, Model, Outcome, Solver, SolverConfig};
use cgra_rng::Rng;

#[derive(Debug, Clone)]
struct RawConstraint {
    terms: Vec<(i64, usize)>,
    cmp: Cmp,
    rhs: i64,
}

#[derive(Debug, Clone)]
struct RawModel {
    n_vars: usize,
    constraints: Vec<RawConstraint>,
    objective: Option<Vec<(i64, usize)>>,
}

fn random_constraint(rng: &mut Rng, n_vars: usize) -> RawConstraint {
    let n_terms = rng.gen_range_inclusive(1..=5);
    let terms = (0..n_terms)
        .map(|_| (rng.gen_i64_inclusive(-4..=4), rng.gen_range(0..n_vars)))
        .collect();
    let cmp = match rng.below(3) {
        0 => Cmp::Le,
        1 => Cmp::Ge,
        _ => Cmp::Eq,
    };
    RawConstraint {
        terms,
        cmp,
        rhs: rng.gen_i64_inclusive(-6..=8),
    }
}

fn random_model(rng: &mut Rng) -> RawModel {
    let n_vars = rng.gen_range_inclusive(2..=9);
    let n_constraints = rng.gen_range_inclusive(1..=10);
    let constraints = (0..n_constraints)
        .map(|_| random_constraint(rng, n_vars))
        .collect();
    let objective = if rng.gen_bool(0.5) {
        let n_terms = rng.gen_range_inclusive(1..=n_vars);
        Some(
            (0..n_terms)
                .map(|_| (rng.gen_i64_inclusive(-5..=5), rng.gen_range(0..n_vars)))
                .collect(),
        )
    } else {
        None
    };
    RawModel {
        n_vars,
        constraints,
        objective,
    }
}

fn build(raw: &RawModel) -> Model {
    let mut m = Model::new();
    let vars = m.new_vars(raw.n_vars);
    for c in &raw.constraints {
        let mut e = LinExpr::new();
        for &(coeff, vi) in &c.terms {
            e.add_term(coeff, vars[vi]);
        }
        m.add(e, c.cmp, c.rhs);
    }
    if let Some(obj) = &raw.objective {
        let mut e = LinExpr::new();
        for &(coeff, vi) in obj {
            e.add_term(coeff, vars[vi]);
        }
        m.minimize(e);
    }
    m
}

/// Check one solver configuration against the exhaustive reference on a
/// single model; panics with the reproducing case index on mismatch.
fn check_against_brute(raw: &RawModel, config: SolverConfig, case: usize, label: &str) {
    let model = build(raw);
    let brute = solve_exhaustive(&model);
    let outcome = Solver::with_config(config).solve(&model);
    match (&brute, &outcome) {
        (BruteOutcome::Infeasible, Outcome::Infeasible) => {}
        (
            BruteOutcome::Optimal { objective: bo, .. },
            Outcome::Optimal {
                objective: so,
                solution,
            },
        ) => {
            assert_eq!(bo, so, "[{label}] case {case}: objective mismatch\n{raw:?}");
            assert_eq!(
                model.check(|v| solution.value(v)),
                Ok(()),
                "[{label}] case {case}: solution violates a constraint\n{raw:?}"
            );
        }
        other => panic!("[{label}] case {case}: outcome mismatch: {other:?}\n{raw:?}"),
    }
}

#[test]
fn solver_agrees_with_brute_force() {
    let mut rng = Rng::seed_from_u64(0xB17B_0001);
    for case in 0..400 {
        let raw = random_model(&mut rng);
        check_against_brute(&raw, SolverConfig::default(), case, "seq");
    }
}

#[test]
fn feasibility_only_agrees() {
    let mut rng = Rng::seed_from_u64(0xB17B_0002);
    for case in 0..400 {
        let mut raw = random_model(&mut rng);
        raw.objective = None;
        check_against_brute(&raw, SolverConfig::default(), case, "seq-feas");
    }
}

/// The portfolio path (threads > 1) must report exactly the same
/// feasibility verdicts and optimal objectives as the exhaustive
/// reference. Exercised at 2 and 4 workers so both the "few diversified
/// engines" and "full feature spread incl. no-VSIDS worker" code paths
/// run.
#[test]
fn portfolio_agrees_with_brute_force() {
    for &threads in &[2usize, 4] {
        let mut rng = Rng::seed_from_u64(0xB17B_0003 + threads as u64);
        for case in 0..150 {
            let raw = random_model(&mut rng);
            let config = SolverConfig {
                threads,
                seed: case as u64,
                ..SolverConfig::default()
            };
            check_against_brute(&raw, config, case, &format!("threads={threads}"));
        }
    }
}

#[test]
fn portfolio_feasibility_only_agrees() {
    let mut rng = Rng::seed_from_u64(0xB17B_0004);
    for case in 0..150 {
        let mut raw = random_model(&mut rng);
        raw.objective = None;
        let config = SolverConfig {
            threads: 4,
            seed: case as u64,
            ..SolverConfig::default()
        };
        check_against_brute(&raw, config, case, "threads=4-feas");
    }
}
