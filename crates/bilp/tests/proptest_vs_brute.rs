//! Property tests: the CDCL branch-and-bound solver must agree with the
//! exhaustive reference solver on feasibility and optimal objective value
//! for arbitrary small 0-1 ILPs.

use bilp::brute::{solve_exhaustive, BruteOutcome};
use bilp::{Cmp, LinExpr, Model, Outcome, Solver};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct RawConstraint {
    terms: Vec<(i64, usize)>,
    cmp: Cmp,
    rhs: i64,
}

fn cmp_strategy() -> impl Strategy<Value = Cmp> {
    prop_oneof![Just(Cmp::Le), Just(Cmp::Ge), Just(Cmp::Eq)]
}

fn constraint_strategy(n_vars: usize) -> impl Strategy<Value = RawConstraint> {
    (
        prop::collection::vec((-4i64..=4, 0..n_vars), 1..=5),
        cmp_strategy(),
        -6i64..=8,
    )
        .prop_map(|(terms, cmp, rhs)| RawConstraint { terms, cmp, rhs })
}

#[derive(Debug, Clone)]
struct RawModel {
    n_vars: usize,
    constraints: Vec<RawConstraint>,
    objective: Option<Vec<(i64, usize)>>,
}

fn model_strategy() -> impl Strategy<Value = RawModel> {
    (2usize..=9).prop_flat_map(|n_vars| {
        (
            prop::collection::vec(constraint_strategy(n_vars), 1..=10),
            prop::option::of(prop::collection::vec((-5i64..=5, 0..n_vars), 1..=n_vars)),
        )
            .prop_map(move |(constraints, objective)| RawModel {
                n_vars,
                constraints,
                objective,
            })
    })
}

fn build(raw: &RawModel) -> Model {
    let mut m = Model::new();
    let vars = m.new_vars(raw.n_vars);
    for c in &raw.constraints {
        let mut e = LinExpr::new();
        for &(coeff, vi) in &c.terms {
            e.add_term(coeff, vars[vi]);
        }
        m.add(e, c.cmp, c.rhs);
    }
    if let Some(obj) = &raw.objective {
        let mut e = LinExpr::new();
        for &(coeff, vi) in obj {
            e.add_term(coeff, vars[vi]);
        }
        m.minimize(e);
    }
    m
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(400))]

    #[test]
    fn solver_agrees_with_brute_force(raw in model_strategy()) {
        let model = build(&raw);
        let brute = solve_exhaustive(&model);
        let outcome = Solver::new().solve(&model);
        match (&brute, &outcome) {
            (BruteOutcome::Infeasible, Outcome::Infeasible) => {}
            (BruteOutcome::Optimal { objective: bo, .. }, Outcome::Optimal { objective: so, solution }) => {
                prop_assert_eq!(bo, so, "objective mismatch");
                prop_assert_eq!(model.check(|v| solution.value(v)), Ok(()));
            }
            other => prop_assert!(false, "outcome mismatch: {:?}", other),
        }
    }

    #[test]
    fn feasibility_only_agrees(raw in model_strategy()) {
        let mut raw = raw;
        raw.objective = None;
        let model = build(&raw);
        let brute = solve_exhaustive(&model);
        let outcome = Solver::new().solve(&model);
        match (&brute, &outcome) {
            (BruteOutcome::Infeasible, Outcome::Infeasible) => {}
            (BruteOutcome::Optimal { .. }, Outcome::Optimal { solution, .. }) => {
                prop_assert_eq!(model.check(|v| solution.value(v)), Ok(()));
            }
            other => prop_assert!(false, "outcome mismatch: {:?}", other),
        }
    }
}
