//! Assumption-based solving property tests.
//!
//! The contract under test: `solve_under_assumptions(m, A)` must reach
//! exactly the verdict (and, for the optimising [`Solver`] entry point,
//! the objective) of solving `m` with every literal of `A` added as a
//! unit constraint — and when the verdict is `Infeasible` because of the
//! assumptions, the reported unsat core must be a subset of `A` whose
//! units alone already make `m` infeasible.
//!
//! Random models reuse the envelope of `proptest_vs_brute.rs`; every
//! failure reproduces from its case index and seed.

use bilp::{Cmp, IncrementalSolver, LinExpr, Lit, Model, Outcome, Solver, SolverConfig, Var};
use cgra_rng::Rng;

#[derive(Debug, Clone)]
struct RawConstraint {
    terms: Vec<(i64, usize)>,
    cmp: Cmp,
    rhs: i64,
}

#[derive(Debug, Clone)]
struct RawModel {
    n_vars: usize,
    constraints: Vec<RawConstraint>,
    objective: Option<Vec<(i64, usize)>>,
}

fn random_model(rng: &mut Rng) -> RawModel {
    let n_vars = rng.gen_range_inclusive(2..=9);
    let n_constraints = rng.gen_range_inclusive(1..=10);
    let constraints = (0..n_constraints)
        .map(|_| {
            let n_terms = rng.gen_range_inclusive(1..=5);
            RawConstraint {
                terms: (0..n_terms)
                    .map(|_| (rng.gen_i64_inclusive(-4..=4), rng.gen_range(0..n_vars)))
                    .collect(),
                cmp: match rng.below(3) {
                    0 => Cmp::Le,
                    1 => Cmp::Ge,
                    _ => Cmp::Eq,
                },
                rhs: rng.gen_i64_inclusive(-6..=8),
            }
        })
        .collect();
    let objective = if rng.gen_bool(0.5) {
        let n_terms = rng.gen_range_inclusive(1..=n_vars);
        Some(
            (0..n_terms)
                .map(|_| (rng.gen_i64_inclusive(-5..=5), rng.gen_range(0..n_vars)))
                .collect(),
        )
    } else {
        None
    };
    RawModel {
        n_vars,
        constraints,
        objective,
    }
}

fn build(raw: &RawModel) -> (Model, Vec<Var>) {
    let mut m = Model::new();
    let vars = m.new_vars(raw.n_vars);
    for c in &raw.constraints {
        let mut e = LinExpr::new();
        for &(coeff, vi) in &c.terms {
            e.add_term(coeff, vars[vi]);
        }
        m.add(e, c.cmp, c.rhs);
    }
    if let Some(obj) = &raw.objective {
        let mut e = LinExpr::new();
        for &(coeff, vi) in obj {
            e.add_term(coeff, vars[vi]);
        }
        m.minimize(e);
    }
    (m, vars)
}

/// A random assumption set: 1–4 literals over the model's variables,
/// with repeated variables (and thus occasional direct contradictions)
/// allowed on purpose.
fn random_assumptions(rng: &mut Rng, vars: &[Var]) -> Vec<Lit> {
    let n = rng.gen_range_inclusive(1..=4);
    (0..n)
        .map(|_| {
            let v = vars[rng.gen_range(0..vars.len())];
            if rng.gen_bool(0.5) {
                v.lit()
            } else {
                !v.lit()
            }
        })
        .collect()
}

/// The model with each assumption added as a permanent unit constraint —
/// the ground-truth formulation assumptions must be equivalent to.
fn with_units(model: &Model, assumptions: &[Lit]) -> Model {
    let mut m = model.clone();
    for &a in assumptions {
        m.add_clause([a]);
    }
    m
}

fn config(presolve: bool) -> SolverConfig {
    SolverConfig {
        presolve,
        ..SolverConfig::default()
    }
}

/// `Solver::solve_under_assumptions` vs. a fresh solve of the model with
/// the assumptions as unit constraints: identical verdicts and objective
/// values, with and without presolve; infeasibility cores are subsets of
/// the assumptions whose units alone reproduce the infeasibility.
#[test]
fn solver_assumptions_match_unit_constraints() {
    for presolve in [true, false] {
        let mut rng = Rng::seed_from_u64(0xA550_0001 + presolve as u64);
        for case in 0..250 {
            let raw = random_model(&mut rng);
            let (model, vars) = build(&raw);
            let assumptions = random_assumptions(&mut rng, &vars);
            let label = format!("presolve={presolve} case={case}");

            let reference =
                Solver::with_config(config(presolve)).solve(&with_units(&model, &assumptions));
            let mut solver = Solver::with_config(config(presolve));
            let assumed = solver.solve_under_assumptions(&model, &assumptions);

            assert_eq!(
                std::mem::discriminant(&reference),
                std::mem::discriminant(&assumed),
                "[{label}] verdict mismatch: reference {reference:?} vs assumed {assumed:?}\n{raw:?}\nassumptions: {assumptions:?}"
            );
            assert_eq!(
                reference.objective(),
                assumed.objective(),
                "[{label}] objective mismatch\n{raw:?}\nassumptions: {assumptions:?}"
            );
            if let Some(solution) = assumed.solution() {
                assert_eq!(
                    model.check(|v| solution.value(v)),
                    Ok(()),
                    "[{label}] assumed solution violates the model\n{raw:?}"
                );
                for &a in &assumptions {
                    assert!(
                        solution.value(a.var()) != a.is_negative(),
                        "[{label}] assumed solution violates assumption {a:?}\n{raw:?}"
                    );
                }
            }
            if assumed == Outcome::Infeasible {
                check_core_sound(&model, &assumptions, solver.unsat_core(), &label, &raw);
            }
        }
    }
}

/// An unsat core must (a) be a subset of the assumptions and (b) already
/// make the model infeasible when its literals are posted as units.
fn check_core_sound(model: &Model, assumptions: &[Lit], core: &[Lit], label: &str, raw: &RawModel) {
    for &c in core {
        assert!(
            assumptions.contains(&c),
            "[{label}] core literal {c:?} is not an assumption\n{raw:?}"
        );
    }
    let hardened = with_units(model, core);
    assert_eq!(
        Solver::new().solve(&hardened),
        Outcome::Infeasible,
        "[{label}] core {core:?} does not reproduce infeasibility\n{raw:?}\nassumptions: {assumptions:?}"
    );
}

/// Directly contradictory assumptions on an otherwise unconstrained
/// variable: infeasible, and the core names both offending literals.
#[test]
fn contradictory_assumptions_yield_two_literal_core() {
    for presolve in [true, false] {
        let mut m = Model::new();
        let vs = m.new_vars(3);
        m.add_clause([vs[0].lit(), vs[1].lit()]);
        let mut s = Solver::with_config(config(presolve));
        let out = s.solve_under_assumptions(&m, &[vs[2].lit(), !vs[2].lit()]);
        assert_eq!(out, Outcome::Infeasible, "presolve={presolve}");
        let core = s.unsat_core();
        assert!(
            core.contains(&vs[2].lit()) && core.contains(&!vs[2].lit()),
            "presolve={presolve}: core {core:?} misses a contradiction side"
        );
        check_core_sound(
            &m,
            &[vs[2].lit(), !vs[2].lit()],
            core,
            "contradiction",
            &RawModel {
                n_vars: 3,
                constraints: Vec::new(),
                objective: None,
            },
        );
    }
}

/// The persistent [`IncrementalSolver`] must agree with the one-shot
/// [`Solver`] across its whole query sequence — feasibility first, then
/// the optimising descent seeded by the feasibility incumbent, then an
/// assumption probe — all on one engine.
#[test]
fn incremental_solver_matches_one_shot() {
    for presolve in [true, false] {
        let mut rng = Rng::seed_from_u64(0xA550_0003 + presolve as u64);
        for case in 0..200 {
            let raw = random_model(&mut rng);
            let (model, vars) = build(&raw);
            let assumptions = random_assumptions(&mut rng, &vars);
            let label = format!("presolve={presolve} case={case}");

            let reference = Solver::with_config(config(presolve)).solve(&model);
            let mut inc = IncrementalSolver::new(&model, config(presolve));

            let feas = inc.solve_feasible();
            match &reference {
                Outcome::Infeasible => {
                    assert_eq!(
                        feas,
                        Outcome::Infeasible,
                        "[{label}] feasibility verdict\n{raw:?}"
                    )
                }
                _ => {
                    let solution = feas
                        .solution()
                        .unwrap_or_else(|| panic!("[{label}] no feasible solution\n{raw:?}"));
                    assert_eq!(
                        model.check(|v| solution.value(v)),
                        Ok(()),
                        "[{label}]\n{raw:?}"
                    );
                }
            }

            let opt = inc.optimize();
            assert_eq!(
                std::mem::discriminant(&reference),
                std::mem::discriminant(&opt),
                "[{label}] optimize verdict: {reference:?} vs {opt:?}\n{raw:?}"
            );
            assert_eq!(
                reference.objective(),
                opt.objective(),
                "[{label}] optimize objective\n{raw:?}"
            );

            // The probe must not be confused by the descent's bounds, and
            // a failed probe must not poison later queries.
            let probe = inc.solve_under_assumptions(&assumptions);
            let ground =
                Solver::with_config(config(presolve)).solve(&with_units(&model, &assumptions));
            assert_eq!(
                probe == Outcome::Infeasible,
                ground == Outcome::Infeasible,
                "[{label}] probe verdict: {probe:?} vs ground {ground:?}\nassumptions: {assumptions:?}\n{raw:?}"
            );
            if let Some(solution) = probe.solution() {
                assert_eq!(
                    model.check(|v| solution.value(v)),
                    Ok(()),
                    "[{label}]\n{raw:?}"
                );
                for &a in &assumptions {
                    assert!(
                        solution.value(a.var()) != a.is_negative(),
                        "[{label}] probe solution violates {a:?}\n{raw:?}"
                    );
                }
            } else if probe == Outcome::Infeasible && reference != Outcome::Infeasible {
                check_core_sound(&model, &assumptions, inc.unsat_core(), &label, &raw);
                assert!(
                    !inc.unsat_core().is_empty(),
                    "[{label}] assumption-caused infeasibility with empty core\n{raw:?}"
                );
            }

            // Engine reuse after a (possibly failed) probe: the optimum is
            // still re-provable on the same engine.
            let again = inc.optimize();
            assert_eq!(
                reference.objective(),
                again.objective(),
                "[{label}] re-optimize after probe\n{raw:?}"
            );
        }
    }
}
