//! # bilp — a 0-1 integer linear programming solver
//!
//! The DAC 2018 CGRA-mapping paper solves its ILP formulation with Gurobi.
//! This crate is the repository's self-contained substitute: an exact
//! solver for integer linear programs whose variables are all binary —
//! which is precisely the class the paper's formulation lives in (the
//! placement variables `F`, routing variables `R` and sink-specific
//! routing variables are all 0/1, with unit-coefficient constraints).
//!
//! Internally the solver is a conflict-driven clause-learning (CDCL)
//! search with:
//!
//! * two-watched-literal clause propagation,
//! * a counting propagator for pseudo-Boolean *at-most* constraints
//!   (cardinality and weighted), with clausal conflict explanations,
//! * 1UIP conflict learning, VSIDS + phase saving, Luby restarts and
//!   learnt-database reduction,
//! * branch-and-bound minimisation by repeatedly strengthening an
//!   objective-bound constraint until unsatisfiability proves optimality.
//!
//! Feasibility verdicts and optimal objective values are exact; only the
//! runtime differs from a commercial solver.
//!
//! # Examples
//!
//! ```
//! use bilp::{LinExpr, Model, Outcome, Solver};
//! // Choose at least 2 of 4 items, minimizing the number chosen.
//! let mut m = Model::new();
//! let items = m.new_vars(4);
//! m.add_ge(LinExpr::sum(items.clone()), 2);
//! m.minimize(LinExpr::sum(items));
//! match Solver::new().solve(&m) {
//!     Outcome::Optimal { objective, .. } => assert_eq!(objective, 2),
//!     other => panic!("unexpected {other:?}"),
//! }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

pub mod brute;
pub mod checker;
mod engine;
mod model;
mod normalize;
pub mod portfolio;
pub mod presolve;
mod proof;
mod solve;

pub use checker::CheckOutcome;
pub use engine::{Budget, Engine, EngineFeatures, EngineStats, SatResult};
pub use model::{to_lp_format, Cmp, Constraint, LinExpr, Lit, Model, Var};
pub use normalize::{normalize, NormConstraint};
pub use portfolio::ClauseExchange;
pub use presolve::{
    presolve, LitDisposition, PresolveConfig, PresolveStats, Presolved, Reconstruction,
};
pub use proof::{Certificate, ProofLog, ProofOrigin, ProofStep, StepKind};
pub use solve::{
    certify_infeasibility, presolve_from_env, threads_from_env, Assignment, HeuristicProbe,
    IncrementalSolver, IncumbentSource, Outcome, SolveStats, Solver, SolverConfig,
};
