//! Normalisation of linear constraints into pseudo-Boolean normal form.
//!
//! Every constraint is rewritten as `Σ aᵢ·litᵢ <= bound` with strictly
//! positive integer coefficients (a "PB at-most" constraint). `>=`
//! constraints are negated; `==` constraints become two inequalities.
//! Clauses and fixed literals are recognised as special cases so the search
//! engine can use the cheaper dedicated propagators.

use crate::model::{Cmp, Constraint, Lit};

/// A constraint in solver normal form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NormConstraint {
    /// The literal must be true (root-level fixing).
    Unit(Lit),
    /// At least one of the literals must be true.
    Clause(Vec<Lit>),
    /// `Σ aᵢ·[litᵢ true] <= bound`, all `aᵢ >= 1`, `0 < bound < Σ aᵢ`.
    AtMost {
        /// Weighted literals; coefficients are strictly positive.
        terms: Vec<(u64, Lit)>,
        /// Upper bound on the weighted count of true literals.
        bound: u64,
    },
    /// The constraint can never be satisfied.
    False,
}

/// Normalises one model constraint into zero or more [`NormConstraint`]s.
///
/// Trivially-true constraints produce nothing. A single model constraint
/// may expand into several normal-form constraints (e.g. `==` splits into
/// two, coefficient elimination emits units).
pub fn normalize(c: &Constraint) -> Vec<NormConstraint> {
    match c.cmp {
        Cmp::Le => normalize_le(c.expr.terms(), c.expr.constant(), c.rhs),
        Cmp::Ge => {
            // expr >= rhs  <=>  -expr <= -rhs
            let negated: Vec<(i64, crate::model::Var)> =
                c.expr.terms().iter().map(|&(a, v)| (-a, v)).collect();
            normalize_le(&negated, -c.expr.constant(), -c.rhs)
        }
        Cmp::Eq => {
            let mut out = normalize_le(c.expr.terms(), c.expr.constant(), c.rhs);
            let negated: Vec<(i64, crate::model::Var)> =
                c.expr.terms().iter().map(|&(a, v)| (-a, v)).collect();
            out.extend(normalize_le(&negated, -c.expr.constant(), -c.rhs));
            out
        }
    }
}

fn normalize_le(
    terms: &[(i64, crate::model::Var)],
    constant: i64,
    rhs: i64,
) -> Vec<NormConstraint> {
    // Merge duplicate variables first.
    let mut merged: Vec<(i64, crate::model::Var)> = terms.to_vec();
    merged.sort_by_key(|&(_, v)| v);
    let mut compact: Vec<(i64, crate::model::Var)> = Vec::with_capacity(merged.len());
    for (a, v) in merged {
        match compact.last_mut() {
            Some((ca, cv)) if *cv == v => *ca += a,
            _ => compact.push((a, v)),
        }
    }
    compact.retain(|&(a, _)| a != 0);

    let mut bound: i128 = i128::from(rhs) - i128::from(constant);
    let mut lits: Vec<(u64, Lit)> = Vec::with_capacity(compact.len());
    for (a, v) in compact {
        if a > 0 {
            lits.push((a as u64, Lit::positive(v)));
        } else {
            // a·v = a - a·(1-v) = a + |a|·(¬v)
            bound += i128::from(-a);
            lits.push(((-a) as u64, Lit::negative(v)));
        }
    }

    if bound < 0 {
        return vec![NormConstraint::False];
    }

    let total: u128 = lits.iter().map(|&(a, _)| u128::from(a)).sum();
    if total <= bound as u128 {
        return Vec::new(); // trivially satisfied
    }
    // `bound < total` fits comfortably in u64 for any model built from i64
    // coefficients of realistic size (matches the pre-tightening code).
    let mut strengthened = 0;
    tighten_at_most(lits, bound as u64, &mut strengthened)
}

/// Greatest common divisor.
fn gcd(a: u64, b: u64) -> u64 {
    if b == 0 {
        a
    } else {
        gcd(b, a % b)
    }
}

/// Tightens a PB at-most constraint `Σ aᵢ·litᵢ <= bound` to fixpoint:
///
/// * **unit elimination** — `aᵢ > bound` forces `litᵢ` false;
/// * **coefficient saturation** — in the equivalent `>=`-form
///   `Σ aᵢ·(1-litᵢ) >= d` with `d = Σaᵢ - bound`, any `aᵢ > d` can be
///   lowered to `d` (the standard pseudo-Boolean saturation rule; note the
///   naive `<=`-form rule "replace `aᵢ > bound` with `bound`" is *unsound*
///   — `5x <= 3` would become `3x <= 3`, which admits `x = 1`);
/// * **gcd division** — all coefficients are divided by their gcd and the
///   bound floored, which strengthens whenever the bound was not a
///   multiple (e.g. `2x + 2y <= 3` becomes `x + y <= 1`).
///
/// Each rule strictly decreases `Σ aᵢ`, so the loop terminates. Emitted
/// units precede the residual constraint; a unit-coefficient residual with
/// `bound = n - 1` is recognised as a clause of negations. `strengthened`
/// counts saturation/gcd applications that genuinely changed the
/// constraint (pure rescaling where the bound divides evenly is not
/// counted, though it is still applied for canonical form).
pub(crate) fn tighten_at_most(
    mut terms: Vec<(u64, Lit)>,
    mut bound: u64,
    strengthened: &mut u64,
) -> Vec<NormConstraint> {
    let mut out = Vec::new();
    loop {
        terms.retain(|&(a, _)| a > 0);
        let total: u128 = terms.iter().map(|&(a, _)| u128::from(a)).sum();
        if total <= u128::from(bound) {
            return out; // trivially satisfied
        }
        // Literals whose coefficient alone exceeds the bound must be false.
        if terms.iter().any(|&(a, _)| a > bound) {
            terms.retain(|&(a, l)| {
                if a > bound {
                    out.push(NormConstraint::Unit(!l));
                    false
                } else {
                    true
                }
            });
            continue;
        }
        // Saturation (>=-space): d is invariant under the rewrite, so one
        // pass suffices before re-checking the other rules.
        let d = total - u128::from(bound);
        let d64 = u64::try_from(d).unwrap_or(u64::MAX);
        if terms.iter().any(|&(a, _)| u128::from(a) > d) {
            let mut new_total: u128 = 0;
            for t in &mut terms {
                if u128::from(t.0) > d {
                    t.0 = d64;
                }
                new_total += u128::from(t.0);
            }
            *strengthened += 1;
            bound = u64::try_from(new_total - d).expect("saturation shrinks the bound");
            continue;
        }
        let g = terms.iter().fold(0, |g, &(a, _)| gcd(g, a));
        if g > 1 {
            if !bound.is_multiple_of(g) {
                *strengthened += 1;
            }
            for t in &mut terms {
                t.0 /= g;
            }
            bound /= g;
            continue;
        }
        break;
    }
    if terms.iter().all(|&(a, _)| a == 1) && bound == terms.len() as u64 - 1 {
        // "not all true" = clause of negations
        out.push(NormConstraint::Clause(
            terms.into_iter().map(|(_, l)| !l).collect(),
        ));
        return out;
    }
    out.push(NormConstraint::AtMost { terms, bound });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinExpr, Model};

    fn con(expr: LinExpr, cmp: Cmp, rhs: i64) -> Constraint {
        Constraint { expr, cmp, rhs }
    }

    #[test]
    fn ge_one_becomes_clause() {
        let mut m = Model::new();
        let x = m.new_var();
        let y = m.new_var();
        let n = normalize(&con(LinExpr::sum([x, y]), Cmp::Ge, 1));
        assert_eq!(n, vec![NormConstraint::Clause(vec![x.lit(), y.lit()])]);
    }

    #[test]
    fn le_zero_becomes_units() {
        let mut m = Model::new();
        let x = m.new_var();
        let y = m.new_var();
        let n = normalize(&con(LinExpr::sum([x, y]), Cmp::Le, 0));
        assert_eq!(
            n,
            vec![
                NormConstraint::Unit(!x.lit()),
                NormConstraint::Unit(!y.lit())
            ]
        );
    }

    #[test]
    fn at_most_one_is_pb() {
        let mut m = Model::new();
        let vs = m.new_vars(3);
        let n = normalize(&con(LinExpr::sum(vs.clone()), Cmp::Le, 1));
        assert_eq!(
            n,
            vec![NormConstraint::AtMost {
                terms: vs.iter().map(|v| (1, v.lit())).collect(),
                bound: 1
            }]
        );
    }

    #[test]
    fn eq_one_splits() {
        let mut m = Model::new();
        let vs = m.new_vars(3);
        let n = normalize(&con(LinExpr::sum(vs.clone()), Cmp::Eq, 1));
        assert_eq!(n.len(), 2);
        assert!(matches!(&n[0], NormConstraint::AtMost { bound: 1, .. }));
        assert!(matches!(&n[1], NormConstraint::Clause(c) if c.len() == 3));
    }

    #[test]
    fn negative_coefficients_flip_literals() {
        let mut m = Model::new();
        let x = m.new_var();
        let y = m.new_var();
        // x - y <= 0  <=>  x + ¬y <= 1, which for two unit terms is the
        // clause (¬x ∨ y).
        let n = normalize(&con(LinExpr::new() + x + (-1, y), Cmp::Le, 0));
        assert_eq!(n, vec![NormConstraint::Clause(vec![!x.lit(), y.lit()])]);
    }

    #[test]
    fn trivially_true_dropped() {
        let mut m = Model::new();
        let vs = m.new_vars(2);
        assert!(normalize(&con(LinExpr::sum(vs.clone()), Cmp::Le, 2)).is_empty());
        assert!(normalize(&con(LinExpr::sum(vs), Cmp::Ge, 0)).is_empty());
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new();
        let vs = m.new_vars(2);
        assert_eq!(
            normalize(&con(LinExpr::sum(vs.clone()), Cmp::Le, -1)),
            vec![NormConstraint::False]
        );
        assert_eq!(
            normalize(&con(LinExpr::sum(vs), Cmp::Ge, 3)),
            vec![NormConstraint::False]
        );
    }

    #[test]
    fn duplicate_vars_merged() {
        let mut m = Model::new();
        let x = m.new_var();
        // x + x <= 1 => 2x <= 1 => x must be false
        let n = normalize(&con(LinExpr::new() + x + x, Cmp::Le, 1));
        assert_eq!(n, vec![NormConstraint::Unit(!x.lit())]);
    }

    #[test]
    fn constant_moves_to_bound() {
        let mut m = Model::new();
        let vs = m.new_vars(3);
        // sum + 1 <= 2  <=>  sum <= 1
        let n = normalize(&con(LinExpr::sum(vs) + 1, Cmp::Le, 2));
        assert!(matches!(&n[0], NormConstraint::AtMost { bound: 1, .. }));
    }

    #[test]
    fn saturation_tightens_weighted_at_most() {
        let mut m = Model::new();
        let x = m.new_var();
        let y = m.new_var();
        // 3x + 3y <= 4: d = 2, both coefficients saturate to 2, giving
        // 2x + 2y <= 2; gcd division yields x + y <= 1, which for two unit
        // terms is the clause (¬x ∨ ¬y).
        let n = normalize(&con(LinExpr::new() + (3, x) + (3, y), Cmp::Le, 4));
        assert_eq!(n, vec![NormConstraint::Clause(vec![!x.lit(), !y.lit()])]);
    }

    #[test]
    fn gcd_division_floors_the_bound() {
        let mut m = Model::new();
        let vs = m.new_vars(3);
        // 2a + 2b + 2c <= 3  =>  a + b + c <= 1 (floor(3/2) = 1).
        let e = LinExpr::new() + (2, vs[0]) + (2, vs[1]) + (2, vs[2]);
        let n = normalize(&con(e, Cmp::Le, 3));
        assert_eq!(
            n,
            vec![NormConstraint::AtMost {
                terms: vs.iter().map(|v| (1, v.lit())).collect(),
                bound: 1
            }]
        );
    }

    #[test]
    fn saturation_cascades_into_units() {
        let mut m = Model::new();
        let x = m.new_var();
        let y = m.new_var();
        // 4x + 2y <= 5: d = 1, both saturate to 1, bound 2 - 1 = 1; the
        // residual x + y <= 1 is recognised as the clause (¬x ∨ ¬y).
        let n = normalize(&con(LinExpr::new() + (4, x) + (2, y), Cmp::Le, 5));
        assert_eq!(n, vec![NormConstraint::Clause(vec![!x.lit(), !y.lit()])]);
    }

    #[test]
    fn eq_split_with_negative_coefficients() {
        let mut m = Model::new();
        let x = m.new_var();
        let y = m.new_var();
        // x - y == 0, i.e. x == y: the <=-side gives clause (¬x ∨ y), the
        // >=-side gives clause (x ∨ ¬y).
        let n = normalize(&con(LinExpr::new() + x + (-1, y), Cmp::Eq, 0));
        assert_eq!(
            n,
            vec![
                NormConstraint::Clause(vec![!x.lit(), y.lit()]),
                NormConstraint::Clause(vec![x.lit(), !y.lit()]),
            ]
        );
    }

    #[test]
    fn eq_split_weighted_emits_units_on_both_sides() {
        let mut m = Model::new();
        let x = m.new_var();
        let y = m.new_var();
        // 3x + y == 3: <=-side is satisfied only with y's coefficient
        // eliminated when x is true; the >=-side forces x true (since
        // y alone cannot reach 3), then y <= 0.
        let n = normalize(&con(LinExpr::new() + (3, x) + y, Cmp::Eq, 3));
        // <=-side: 3x + y <= 3 -> d = 1 -> saturates to x + y <= 1, the
        // clause (¬x ∨ ¬y).
        assert!(n.contains(&NormConstraint::Clause(vec![!x.lit(), !y.lit()])));
        // >=-side: 3x + y >= 3 <=> 3¬x + ¬y <= 1 -> ¬x eliminated (x
        // forced true), residual ¬y <= 1 trivially satisfied.
        assert!(n.contains(&NormConstraint::Unit(x.lit())));
    }

    #[test]
    fn negative_constant_on_ge_side() {
        let mut m = Model::new();
        let x = m.new_var();
        let y = m.new_var();
        // -2x - 2y >= -3  <=>  2x + 2y <= 3  <=>  x + y <= 1, the clause
        // (¬x ∨ ¬y).
        let n = normalize(&con(LinExpr::new() + (-2, x) + (-2, y), Cmp::Ge, -3));
        assert_eq!(n, vec![NormConstraint::Clause(vec![!x.lit(), !y.lit()])]);
    }

    #[test]
    fn weighted_unit_elimination() {
        let mut m = Model::new();
        let x = m.new_var();
        let y = m.new_var();
        // 5x + y <= 3 => x false, residual y <= 3 trivially true
        let n = normalize(&con(LinExpr::new() + (5, x) + y, Cmp::Le, 3));
        assert_eq!(n, vec![NormConstraint::Unit(!x.lit())]);
    }
}
