//! Normalisation of linear constraints into pseudo-Boolean normal form.
//!
//! Every constraint is rewritten as `Σ aᵢ·litᵢ <= bound` with strictly
//! positive integer coefficients (a "PB at-most" constraint). `>=`
//! constraints are negated; `==` constraints become two inequalities.
//! Clauses and fixed literals are recognised as special cases so the search
//! engine can use the cheaper dedicated propagators.

use crate::model::{Cmp, Constraint, Lit};

/// A constraint in solver normal form.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NormConstraint {
    /// The literal must be true (root-level fixing).
    Unit(Lit),
    /// At least one of the literals must be true.
    Clause(Vec<Lit>),
    /// `Σ aᵢ·[litᵢ true] <= bound`, all `aᵢ >= 1`, `0 < bound < Σ aᵢ`.
    AtMost {
        /// Weighted literals; coefficients are strictly positive.
        terms: Vec<(u64, Lit)>,
        /// Upper bound on the weighted count of true literals.
        bound: u64,
    },
    /// The constraint can never be satisfied.
    False,
}

/// Normalises one model constraint into zero or more [`NormConstraint`]s.
///
/// Trivially-true constraints produce nothing. A single model constraint
/// may expand into several normal-form constraints (e.g. `==` splits into
/// two, coefficient elimination emits units).
pub fn normalize(c: &Constraint) -> Vec<NormConstraint> {
    match c.cmp {
        Cmp::Le => normalize_le(c.expr.terms(), c.expr.constant(), c.rhs),
        Cmp::Ge => {
            // expr >= rhs  <=>  -expr <= -rhs
            let negated: Vec<(i64, crate::model::Var)> =
                c.expr.terms().iter().map(|&(a, v)| (-a, v)).collect();
            normalize_le(&negated, -c.expr.constant(), -c.rhs)
        }
        Cmp::Eq => {
            let mut out = normalize_le(c.expr.terms(), c.expr.constant(), c.rhs);
            let negated: Vec<(i64, crate::model::Var)> =
                c.expr.terms().iter().map(|&(a, v)| (-a, v)).collect();
            out.extend(normalize_le(&negated, -c.expr.constant(), -c.rhs));
            out
        }
    }
}

fn normalize_le(
    terms: &[(i64, crate::model::Var)],
    constant: i64,
    rhs: i64,
) -> Vec<NormConstraint> {
    // Merge duplicate variables first.
    let mut merged: Vec<(i64, crate::model::Var)> = terms.to_vec();
    merged.sort_by_key(|&(_, v)| v);
    let mut compact: Vec<(i64, crate::model::Var)> = Vec::with_capacity(merged.len());
    for (a, v) in merged {
        match compact.last_mut() {
            Some((ca, cv)) if *cv == v => *ca += a,
            _ => compact.push((a, v)),
        }
    }
    compact.retain(|&(a, _)| a != 0);

    let mut bound: i128 = i128::from(rhs) - i128::from(constant);
    let mut lits: Vec<(u64, Lit)> = Vec::with_capacity(compact.len());
    for (a, v) in compact {
        if a > 0 {
            lits.push((a as u64, Lit::positive(v)));
        } else {
            // a·v = a - a·(1-v) = a + |a|·(¬v)
            bound += i128::from(-a);
            lits.push(((-a) as u64, Lit::negative(v)));
        }
    }

    if bound < 0 {
        return vec![NormConstraint::False];
    }
    let bound = bound as u128;

    let total: u128 = lits.iter().map(|&(a, _)| u128::from(a)).sum();
    if total <= bound {
        return Vec::new(); // trivially satisfied
    }

    let mut out = Vec::new();
    // Literals whose coefficient alone exceeds the bound must be false.
    let mut kept: Vec<(u64, Lit)> = Vec::with_capacity(lits.len());
    for (a, l) in lits {
        if u128::from(a) > bound {
            out.push(NormConstraint::Unit(!l));
        } else {
            kept.push((a, l));
        }
    }
    let kept_total: u128 = kept.iter().map(|&(a, _)| u128::from(a)).sum();
    if kept_total <= bound {
        return out; // residual is trivially satisfied
    }
    let bound = bound as u64;

    if kept.iter().all(|&(a, _)| a == 1) {
        let n = kept.len() as u64;
        if bound == n - 1 {
            // "not all true" = clause of negations
            out.push(NormConstraint::Clause(
                kept.into_iter().map(|(_, l)| !l).collect(),
            ));
            return out;
        }
    }
    out.push(NormConstraint::AtMost { terms: kept, bound });
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinExpr, Model};

    fn con(expr: LinExpr, cmp: Cmp, rhs: i64) -> Constraint {
        Constraint { expr, cmp, rhs }
    }

    #[test]
    fn ge_one_becomes_clause() {
        let mut m = Model::new();
        let x = m.new_var();
        let y = m.new_var();
        let n = normalize(&con(LinExpr::sum([x, y]), Cmp::Ge, 1));
        assert_eq!(n, vec![NormConstraint::Clause(vec![x.lit(), y.lit()])]);
    }

    #[test]
    fn le_zero_becomes_units() {
        let mut m = Model::new();
        let x = m.new_var();
        let y = m.new_var();
        let n = normalize(&con(LinExpr::sum([x, y]), Cmp::Le, 0));
        assert_eq!(
            n,
            vec![
                NormConstraint::Unit(!x.lit()),
                NormConstraint::Unit(!y.lit())
            ]
        );
    }

    #[test]
    fn at_most_one_is_pb() {
        let mut m = Model::new();
        let vs = m.new_vars(3);
        let n = normalize(&con(LinExpr::sum(vs.clone()), Cmp::Le, 1));
        assert_eq!(
            n,
            vec![NormConstraint::AtMost {
                terms: vs.iter().map(|v| (1, v.lit())).collect(),
                bound: 1
            }]
        );
    }

    #[test]
    fn eq_one_splits() {
        let mut m = Model::new();
        let vs = m.new_vars(3);
        let n = normalize(&con(LinExpr::sum(vs.clone()), Cmp::Eq, 1));
        assert_eq!(n.len(), 2);
        assert!(matches!(&n[0], NormConstraint::AtMost { bound: 1, .. }));
        assert!(matches!(&n[1], NormConstraint::Clause(c) if c.len() == 3));
    }

    #[test]
    fn negative_coefficients_flip_literals() {
        let mut m = Model::new();
        let x = m.new_var();
        let y = m.new_var();
        // x - y <= 0  <=>  x + ¬y <= 1, which for two unit terms is the
        // clause (¬x ∨ y).
        let n = normalize(&con(LinExpr::new() + x + (-1, y), Cmp::Le, 0));
        assert_eq!(n, vec![NormConstraint::Clause(vec![!x.lit(), y.lit()])]);
    }

    #[test]
    fn trivially_true_dropped() {
        let mut m = Model::new();
        let vs = m.new_vars(2);
        assert!(normalize(&con(LinExpr::sum(vs.clone()), Cmp::Le, 2)).is_empty());
        assert!(normalize(&con(LinExpr::sum(vs), Cmp::Ge, 0)).is_empty());
    }

    #[test]
    fn infeasible_detected() {
        let mut m = Model::new();
        let vs = m.new_vars(2);
        assert_eq!(
            normalize(&con(LinExpr::sum(vs.clone()), Cmp::Le, -1)),
            vec![NormConstraint::False]
        );
        assert_eq!(
            normalize(&con(LinExpr::sum(vs), Cmp::Ge, 3)),
            vec![NormConstraint::False]
        );
    }

    #[test]
    fn duplicate_vars_merged() {
        let mut m = Model::new();
        let x = m.new_var();
        // x + x <= 1 => 2x <= 1 => x must be false
        let n = normalize(&con(LinExpr::new() + x + x, Cmp::Le, 1));
        assert_eq!(n, vec![NormConstraint::Unit(!x.lit())]);
    }

    #[test]
    fn constant_moves_to_bound() {
        let mut m = Model::new();
        let vs = m.new_vars(3);
        // sum + 1 <= 2  <=>  sum <= 1
        let n = normalize(&con(LinExpr::sum(vs) + 1, Cmp::Le, 2));
        assert!(matches!(&n[0], NormConstraint::AtMost { bound: 1, .. }));
    }

    #[test]
    fn weighted_unit_elimination() {
        let mut m = Model::new();
        let x = m.new_var();
        let y = m.new_var();
        // 5x + y <= 3 => x false, residual y <= 3 trivially true
        let n = normalize(&con(LinExpr::new() + (5, x) + y, Cmp::Le, 3));
        assert_eq!(n, vec![NormConstraint::Unit(!x.lit())]);
    }
}
