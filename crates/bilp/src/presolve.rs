//! Presolve: root-level problem reduction ahead of search.
//!
//! The CDCL engine is strongest on a *small* model: every variable it never
//! sees is a variable it never branches on, and every constraint removed is
//! one fewer watch list to walk. This module shrinks a [`Model`] with a
//! fixpoint of cheap, sound transformations before any search begins:
//!
//! 1. **Root propagation** — unit constraints are applied and their
//!    consequences propagated to fixpoint across clauses and PB at-most
//!    constraints.
//! 2. **Coefficient saturation + gcd division** — at-most constraints are
//!    tightened with the standard pseudo-Boolean saturation rule (applied in
//!    ≥-space, where it is sound) and divided by the gcd of their
//!    coefficients with a floored bound (see [`crate::normalize`]).
//! 3. **Equivalent-literal substitution** — the binary clauses `(¬a ∨ b)`
//!    and `(a ∨ ¬b)` together mean `a ≡ b`; such classes are merged with a
//!    union-find over literals and every occurrence rewritten to the class
//!    representative. ILP mapping formulations are full of `f ⇔ r`
//!    implication pairs, which makes this the single biggest reduction.
//! 4. **Duplicate and subsumed constraint elimination** — syntactic
//!    duplicates are dropped, and a budgeted occurrence-list pass removes
//!    clauses subsumed by shorter ones.
//! 5. **At-most-one clique detection** — pairwise exclusions (binary
//!    clauses) are collected into an adjacency structure together with
//!    existing at-most-one constraints; greedily grown cliques replace the
//!    covered binaries with a single cardinality constraint.
//! 6. **Failed-literal probing (budgeted)** — each polarity of
//!    high-occurrence variables is temporarily assumed and unit-propagated;
//!    a conflict fixes the opposite literal at the root. Both polarities
//!    failing proves infeasibility.
//! 7. **Fixed-variable elimination** — fixed and aliased variables are
//!    removed and the survivors densely renumbered.
//!
//! # Why reconstruction is sound
//!
//! Every pass preserves the solution set exactly, up to the recorded
//! variable [`Reconstruction`]: a variable is either *kept* (renamed to a
//! dense index, possibly with flipped polarity when its equivalence-class
//! representative is a negated literal) or *fixed* (its value is forced in
//! every solution, or — for variables appearing in no constraint — chosen
//! to the objective-optimal polarity, which preserves both feasibility and
//! the optimum). Fixed objective contributions are folded into the reduced
//! objective's *constant* term, so objective values reported against the
//! reduced model equal objective values of the expanded assignment against
//! the original model; no post-hoc adjustment is needed.

use crate::model::{LinExpr, Lit, Model, Var};
use crate::normalize::{normalize, NormConstraint};
use crate::solve::Assignment;
use std::collections::{BTreeMap, BTreeSet, HashMap, HashSet, VecDeque};
use std::time::{Duration, Instant};

const UNASSIGNED: i8 = -1;
/// Hard cap on simplification rounds; each round is near-linear and the
/// fixpoint is almost always reached in two or three.
const MAX_ROUNDS: u32 = 12;
/// Upper bound on pairwise expansion of an existing at-most-one when
/// seeding the exclusion adjacency (quadratic in the constraint length).
const CLIQUE_SEED_LIMIT: usize = 32;
/// Budget (in pairwise lit comparisons) for the clause subsumption pass.
const SUBSUME_BUDGET: u64 = 2_000_000;

/// Presolve configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct PresolveConfig {
    /// Propagation-step budget for failed-literal probing; `0` disables
    /// probing entirely.
    pub probe_budget: u64,
    /// Models with fewer variables than this skip probing outright.
    /// On easy instances the probe pass costs as much wall time as the
    /// whole solve (BENCH_presolve: ~100–200 ms of `presolve_ms` against
    /// comparable totals) while the search finds the same fixings in its
    /// first few conflicts; small models therefore go straight to the
    /// engine. Set to `0` to probe regardless of size.
    pub probe_min_vars: usize,
    /// Absolute deadline shared with the solver: presolve time counts
    /// against the solve budget, and every pass polls this.
    pub deadline: Option<Instant>,
}

impl Default for PresolveConfig {
    fn default() -> Self {
        PresolveConfig {
            probe_budget: 200_000,
            probe_min_vars: 512,
            deadline: None,
        }
    }
}

/// Reduction counters for one presolve run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PresolveStats {
    /// Variables in the original model.
    pub vars_before: u64,
    /// Variables in the reduced model.
    pub vars_after: u64,
    /// Constraints in the original model.
    pub constraints_before: u64,
    /// Constraints in the reduced model.
    pub constraints_after: u64,
    /// Variables fixed at the root (propagation, probing, free-variable
    /// elimination).
    pub fixed_vars: u64,
    /// Variables merged into another variable by equivalent-literal
    /// substitution.
    pub aliased_vars: u64,
    /// Constraints removed (satisfied, trivial, duplicate, subsumed, or
    /// replaced by a clique).
    pub removed_constraints: u64,
    /// At-most constraints tightened by saturation or gcd division.
    pub strengthened: u64,
    /// At-most-one cliques synthesised from pairwise exclusions.
    pub cliques: u64,
    /// Variables probed (both polarities counted once).
    pub probed_vars: u64,
    /// Probes that failed and therefore fixed the opposite literal.
    pub failed_literals: u64,
    /// Simplification rounds until fixpoint.
    pub rounds: u32,
    /// Wall-clock time spent in presolve.
    pub elapsed: Duration,
}

impl PresolveStats {
    /// Fraction of variables + constraints removed, in `[0, 1]`.
    pub fn reduction_ratio(&self) -> f64 {
        let before = (self.vars_before + self.constraints_before) as f64;
        let after = (self.vars_after + self.constraints_after) as f64;
        if before == 0.0 {
            0.0
        } else {
            1.0 - after / before
        }
    }
}

/// How one original variable is recovered from a reduced-model assignment.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Disposition {
    /// The variable is fixed. `entailed` distinguishes fixings the model
    /// forces (root units, probing) from don't-care eliminations of
    /// unconstrained variables, where presolve merely *picked* a value
    /// and the model admits either.
    Fixed { value: bool, entailed: bool },
    /// The variable maps to a reduced-model variable (possibly negated).
    Mapped { var: Var, negated: bool },
}

/// Maps assignments of the reduced model back to the original variables.
#[derive(Debug, Clone)]
pub struct Reconstruction {
    dispositions: Vec<Disposition>,
}

impl Reconstruction {
    /// Expands a reduced-model assignment to the original variable space.
    pub fn expand(&self, reduced: &Assignment) -> Assignment {
        Assignment::from_values(
            self.dispositions
                .iter()
                .map(|d| match *d {
                    Disposition::Fixed { value, .. } => value,
                    Disposition::Mapped { var, negated } => reduced.value(var) ^ negated,
                })
                .collect(),
        )
    }

    /// Number of variables in the original model.
    pub fn num_original_vars(&self) -> usize {
        self.dispositions.len()
    }

    /// Projects a complete original-space assignment onto the reduced
    /// model's variables — the inverse direction of
    /// [`Reconstruction::expand`], used to translate heuristic incumbents
    /// into the space the engines search. Returns `None` when the
    /// assignment contradicts an entailed fixing or values two originals
    /// merged into one reduced variable inconsistently: such an
    /// assignment violates the original model, so it has no reduced
    /// counterpart. Don't-care eliminations accept either value.
    pub fn restrict(&self, original: &[bool], reduced_vars: usize) -> Option<Vec<bool>> {
        if original.len() != self.dispositions.len() {
            return None;
        }
        let mut values: Vec<Option<bool>> = vec![None; reduced_vars];
        for (i, d) in self.dispositions.iter().enumerate() {
            match *d {
                Disposition::Fixed { value, entailed } => {
                    if entailed && original[i] != value {
                        return None;
                    }
                }
                Disposition::Mapped { var, negated } => {
                    let v = original[i] ^ negated;
                    match values.get(var.index()).copied()? {
                        None => values[var.index()] = Some(v),
                        Some(prev) if prev != v => return None,
                        Some(_) => {}
                    }
                }
            }
        }
        // Every reduced variable is some surviving original's
        // representative, so a complete original assignment covers them
        // all; treat a gap as untranslatable rather than guessing.
        values.into_iter().collect()
    }

    /// Where an original-model literal lives in the reduced model. Used
    /// to translate assumption literals into the reduced space (and unsat
    /// cores back): equivalences ([`LitDisposition::Mapped`]) and entailed
    /// fixings ([`LitDisposition::Fixed`]) transfer exactly — in
    /// particular a fixed-`false` literal is its own refutation — while
    /// [`LitDisposition::Free`] marks a don't-care elimination the caller
    /// must handle conservatively (the model does *not* entail the picked
    /// value, so a disagreeing assumption is not thereby refuted).
    pub fn map_lit(&self, lit: Lit) -> LitDisposition {
        match self.dispositions[lit.var().index()] {
            Disposition::Fixed { value, entailed } => {
                let as_seen = value != lit.is_negative();
                if entailed {
                    LitDisposition::Fixed(as_seen)
                } else {
                    LitDisposition::Free(as_seen)
                }
            }
            Disposition::Mapped { var, negated } => {
                LitDisposition::Mapped(if negated != lit.is_negative() {
                    Lit::negative(var)
                } else {
                    Lit::positive(var)
                })
            }
        }
    }
}

/// Where an original-model literal lives after presolve (see
/// [`Reconstruction::map_lit`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LitDisposition {
    /// The literal's variable was fixed by an entailed deduction; the
    /// literal evaluates to this constant in every solution of the
    /// original model.
    Fixed(bool),
    /// The literal's variable was eliminated as unconstrained and presolve
    /// picked a value under which the literal evaluates to this constant —
    /// but the model admits the opposite value too.
    Free(bool),
    /// The literal is equivalent to this reduced-model literal.
    Mapped(Lit),
}

/// Result of [`presolve`].
#[derive(Debug, Clone)]
pub enum Presolved {
    /// Presolve proved the model infeasible.
    Infeasible {
        /// Reduction counters up to the refutation.
        stats: PresolveStats,
    },
    /// An equivalent reduced model plus the variable map back.
    Reduced {
        /// The reduced model.
        model: Model,
        /// Maps reduced assignments back to original variables.
        reconstruction: Reconstruction,
        /// Reduction counters.
        stats: PresolveStats,
    },
}

impl Presolved {
    /// The reduction counters, whichever way presolve ended.
    pub fn stats(&self) -> &PresolveStats {
        match self {
            Presolved::Infeasible { stats } | Presolved::Reduced { stats, .. } => stats,
        }
    }
}

/// A working constraint; literals are rewritten in place as substitutions
/// and fixings land, so stored literals are current as of the last
/// simplification sweep.
#[derive(Debug, Clone)]
enum Con {
    Clause(Vec<Lit>),
    AtMost(Vec<(u64, Lit)>, u64),
}

struct Work {
    value: Vec<i8>,
    rep: Vec<Lit>,
    cons: Vec<Option<Con>>,
    queue: VecDeque<Lit>,
    stats: PresolveStats,
    deadline: Option<Instant>,
    poll: u32,
    out_of_time: bool,
}

/// Signal that a root-level contradiction was derived.
struct Conflict;

impl Work {
    fn new(n: usize, deadline: Option<Instant>) -> Self {
        Work {
            value: vec![UNASSIGNED; n],
            rep: (0..n).map(|i| Var(i as u32).lit()).collect(),
            cons: Vec::new(),
            queue: VecDeque::new(),
            stats: PresolveStats::default(),
            deadline,
            poll: 0,
            out_of_time: false,
        }
    }

    /// Amortised deadline poll; once expired, passes wind down and the
    /// (still sound) partially-reduced model is emitted.
    fn time_up(&mut self) -> bool {
        if self.out_of_time {
            return true;
        }
        self.poll += 1;
        if self.poll & 0x3ff == 0 {
            if let Some(d) = self.deadline {
                if Instant::now() >= d {
                    self.out_of_time = true;
                }
            }
        }
        self.out_of_time
    }

    /// Resolves a literal to its equivalence-class representative, with
    /// path compression.
    fn find(&mut self, l: Lit) -> Lit {
        let mut cur = l;
        let mut chain: Vec<Lit> = Vec::new();
        loop {
            let r = self.rep[cur.var().index()];
            let mapped = if cur.is_negative() { !r } else { r };
            if mapped == cur {
                break;
            }
            chain.push(cur);
            cur = mapped;
        }
        for c in chain {
            self.rep[c.var().index()] = if c.is_negative() { !cur } else { cur };
        }
        cur
    }

    fn enqueue(&mut self, l: Lit) {
        self.queue.push_back(l);
    }

    /// Records `a ≡ b`. Returns whether anything changed.
    fn union(&mut self, a: Lit, b: Lit) -> Result<bool, Conflict> {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return Ok(false);
        }
        if ra == !rb {
            return Err(Conflict);
        }
        // If either side is already assigned, the equivalence is just a
        // unit on the other side.
        let va = self.value[ra.var().index()];
        let vb = self.value[rb.var().index()];
        if va != UNASSIGNED {
            let b_true = (va == 1) != ra.is_negative();
            self.enqueue(if b_true { rb } else { !rb });
            return Ok(true);
        }
        if vb != UNASSIGNED {
            let a_true = (vb == 1) != rb.is_negative();
            self.enqueue(if a_true { ra } else { !ra });
            return Ok(true);
        }
        // Lower variable index wins as representative: deterministic.
        let (child, root) = if ra.var().index() < rb.var().index() {
            (rb, ra)
        } else {
            (ra, rb)
        };
        self.rep[child.var().index()] = if child.is_negative() { !root } else { root };
        self.stats.aliased_vars += 1;
        Ok(true)
    }

    /// Drains the unit queue into root assignments.
    fn drain_queue(&mut self) -> Result<bool, Conflict> {
        let mut changed = false;
        while let Some(l) = self.queue.pop_front() {
            let r = self.find(l);
            let want: i8 = if r.is_negative() { 0 } else { 1 };
            let slot = &mut self.value[r.var().index()];
            match *slot {
                UNASSIGNED => {
                    *slot = want;
                    changed = true;
                }
                v if v == want => {}
                _ => return Err(Conflict),
            }
        }
        Ok(changed)
    }

    fn accept_norm(&mut self, nc: NormConstraint) -> Result<(), Conflict> {
        match nc {
            NormConstraint::Unit(l) => self.enqueue(l),
            NormConstraint::Clause(lits) => self.cons.push(Some(Con::Clause(lits))),
            NormConstraint::AtMost { terms, bound } => {
                self.cons.push(Some(Con::AtMost(terms, bound)))
            }
            NormConstraint::False => return Err(Conflict),
        }
        Ok(())
    }

    /// Rewrites one constraint under the current substitution/assignment.
    /// `None` means the constraint was satisfied or replaced by units.
    fn simplify_con(&mut self, con: Con, changed: &mut bool) -> Result<Option<Con>, Conflict> {
        match con {
            Con::Clause(lits) => {
                let mut out: Vec<Lit> = Vec::with_capacity(lits.len());
                let mut any = false;
                for l in lits {
                    let r = self.find(l);
                    if r != l {
                        any = true;
                    }
                    match self.value[r.var().index()] {
                        UNASSIGNED => out.push(r),
                        v => {
                            any = true;
                            if (v == 1) != r.is_negative() {
                                // Satisfied.
                                *changed = true;
                                self.stats.removed_constraints += 1;
                                return Ok(None);
                            }
                            // False literal: dropped.
                        }
                    }
                }
                out.sort_unstable();
                out.dedup();
                // Codes of l and ¬l are adjacent, so a tautology shows up
                // as consecutive entries after sorting.
                if out.windows(2).any(|w| w[0].var() == w[1].var()) {
                    *changed = true;
                    self.stats.removed_constraints += 1;
                    return Ok(None);
                }
                match out.len() {
                    0 => Err(Conflict),
                    1 => {
                        self.enqueue(out[0]);
                        *changed = true;
                        Ok(None)
                    }
                    _ => {
                        if any {
                            *changed = true;
                        }
                        Ok(Some(Con::Clause(out)))
                    }
                }
            }
            Con::AtMost(terms, bound) => {
                // Merge per-variable, tracking coefficients on both
                // polarities: a·x + b·¬x = min(a,b) + |a-b|·(dominant lit).
                let mut per_var: BTreeMap<Var, (u64, u64)> = BTreeMap::new();
                let mut bound = i128::from(bound);
                let mut any = false;
                for (a, l) in &terms {
                    let r = self.find(*l);
                    if r != *l {
                        any = true;
                    }
                    match self.value[r.var().index()] {
                        UNASSIGNED => {
                            let e = per_var.entry(r.var()).or_insert((0, 0));
                            if r.is_negative() {
                                e.1 += a;
                            } else {
                                e.0 += a;
                            }
                        }
                        v => {
                            any = true;
                            if (v == 1) != r.is_negative() {
                                bound -= i128::from(*a);
                            }
                        }
                    }
                }
                let mut kept: Vec<(u64, Lit)> = Vec::with_capacity(per_var.len());
                for (v, (pos, neg)) in per_var {
                    let base = pos.min(neg);
                    if base > 0 {
                        any = true;
                    }
                    bound -= i128::from(base);
                    match pos.cmp(&neg) {
                        std::cmp::Ordering::Greater => kept.push((pos - neg, Lit::positive(v))),
                        std::cmp::Ordering::Less => kept.push((neg - pos, Lit::negative(v))),
                        std::cmp::Ordering::Equal => {}
                    }
                }
                if bound < 0 {
                    return Err(Conflict);
                }
                let norm = crate::normalize::tighten_at_most(
                    kept.clone(),
                    bound as u64,
                    &mut self.stats.strengthened,
                );
                // The common case: the constraint survives unchanged as a
                // single at-most.
                if let [NormConstraint::AtMost { terms: t, bound: b }] = norm.as_slice() {
                    if any || *t != kept || i128::from(*b) != bound {
                        *changed = true;
                    }
                    return Ok(Some(Con::AtMost(t.clone(), *b)));
                }
                *changed = true;
                let mut replacement = None;
                for nc in norm {
                    match nc {
                        NormConstraint::Unit(l) => self.enqueue(l),
                        NormConstraint::False => return Err(Conflict),
                        NormConstraint::Clause(lits) => {
                            debug_assert!(replacement.is_none());
                            replacement = Some(Con::Clause(lits));
                        }
                        NormConstraint::AtMost { terms, bound } => {
                            debug_assert!(replacement.is_none());
                            replacement = Some(Con::AtMost(terms, bound));
                        }
                    }
                }
                if replacement.is_none() {
                    self.stats.removed_constraints += 1;
                }
                Ok(replacement)
            }
        }
    }

    /// One full sweep over all active constraints.
    fn simplify_all(&mut self) -> Result<bool, Conflict> {
        let mut changed = false;
        for i in 0..self.cons.len() {
            if self.time_up() {
                break;
            }
            if let Some(con) = self.cons[i].take() {
                self.cons[i] = self.simplify_con(con, &mut changed)?;
            }
        }
        Ok(changed)
    }

    /// Propagates queued units to fixpoint using occurrence lists, so a
    /// long implication chain does not trigger repeated full sweeps.
    fn propagate(&mut self) -> Result<bool, Conflict> {
        let mut changed = false;
        loop {
            if !self.drain_queue()? {
                return Ok(changed);
            }
            changed = true;
            if self.time_up() {
                return Ok(changed);
            }
            // Occurrence lists keyed by the variables as currently stored;
            // valid until the next union (none happen inside this loop).
            let mut occ: HashMap<Var, Vec<u32>> = HashMap::new();
            for (i, con) in self.cons.iter().enumerate() {
                let Some(con) = con else { continue };
                let mut push = |v: Var| occ.entry(v).or_default().push(i as u32);
                match con {
                    Con::Clause(lits) => lits.iter().for_each(|l| push(l.var())),
                    Con::AtMost(terms, _) => terms.iter().for_each(|(_, l)| push(l.var())),
                }
            }
            let mut dirty: VecDeque<u32> = VecDeque::new();
            let mut in_dirty: HashSet<u32> = HashSet::new();
            let mark = |v: Var,
                        occ: &HashMap<Var, Vec<u32>>,
                        dirty: &mut VecDeque<u32>,
                        in_dirty: &mut HashSet<u32>| {
                if let Some(list) = occ.get(&v) {
                    for &i in list {
                        if in_dirty.insert(i) {
                            dirty.push_back(i);
                        }
                    }
                }
            };
            // Everything assigned since the occurrence lists were built is
            // unknown, so seed from all currently-assigned variables once,
            // then incrementally from fresh units.
            for v in 0..self.value.len() {
                if self.value[v] != UNASSIGNED {
                    mark(Var(v as u32), &occ, &mut dirty, &mut in_dirty);
                }
            }
            while let Some(i) = dirty.pop_front() {
                in_dirty.remove(&i);
                if self.time_up() {
                    break;
                }
                if let Some(con) = self.cons[i as usize].take() {
                    let mut local = false;
                    self.cons[i as usize] = self.simplify_con(con, &mut local)?;
                    if local {
                        changed = true;
                    }
                }
                // Fresh units dirty their occurrence lists (under the
                // old variable naming, which units do not change).
                let fresh: Vec<Lit> = self.queue.iter().copied().collect();
                self.drain_queue()?;
                for l in fresh {
                    mark(l.var(), &occ, &mut dirty, &mut in_dirty);
                }
            }
        }
    }

    /// Merges equivalent-literal classes: strongly connected components of
    /// the binary implication graph (each binary clause `(a ∨ b)`
    /// contributes `¬a → b` and `¬b → a`) are literal equivalence classes.
    /// A component containing both polarities of a variable is a
    /// contradiction.
    fn equiv_pass(&mut self) -> Result<bool, Conflict> {
        let n = self.value.len();
        let mut adj: Vec<Vec<u32>> = vec![Vec::new(); 2 * n];
        let mut any_edge = false;
        for con in self.cons.iter().flatten() {
            if let Con::Clause(lits) = con {
                if let [a, b] = lits.as_slice() {
                    adj[(!*a).code()].push(b.code() as u32);
                    adj[(!*b).code()].push(a.code() as u32);
                    any_edge = true;
                }
            }
        }
        if !any_edge {
            return Ok(false);
        }
        // Iterative Tarjan SCC.
        const UNVISITED: u32 = u32::MAX;
        let mut index = vec![UNVISITED; 2 * n];
        let mut low = vec![0u32; 2 * n];
        let mut on_stack = vec![false; 2 * n];
        let mut stack: Vec<u32> = Vec::new();
        let mut next_index = 0u32;
        let mut sccs: Vec<Vec<u32>> = Vec::new();
        let mut call: Vec<(u32, u32)> = Vec::new(); // (node, edge cursor)
        for s in 0..2 * n {
            if index[s] != UNVISITED {
                continue;
            }
            call.push((s as u32, 0));
            while let Some(frame) = call.last_mut() {
                let (v, cursor) = (frame.0 as usize, frame.1 as usize);
                if cursor == 0 {
                    index[v] = next_index;
                    low[v] = next_index;
                    next_index += 1;
                    stack.push(v as u32);
                    on_stack[v] = true;
                }
                if let Some(&w) = adj[v].get(cursor) {
                    frame.1 += 1;
                    let w = w as usize;
                    if index[w] == UNVISITED {
                        call.push((w as u32, 0));
                    } else if on_stack[w] {
                        low[v] = low[v].min(index[w]);
                    }
                } else {
                    if low[v] == index[v] {
                        let mut comp: Vec<u32> = Vec::new();
                        loop {
                            let w = stack.pop().expect("SCC stack holds the root");
                            on_stack[w as usize] = false;
                            comp.push(w);
                            if w as usize == v {
                                break;
                            }
                        }
                        if comp.len() > 1 {
                            comp.sort_unstable();
                            sccs.push(comp);
                        }
                    }
                    call.pop();
                    if let Some(parent) = call.last() {
                        let p = parent.0 as usize;
                        low[p] = low[p].min(low[v]);
                    }
                }
            }
        }
        let mut changed = false;
        for comp in sccs {
            // Both polarities of one variable in the same component means
            // x → ¬x and ¬x → x: infeasible.
            if comp.windows(2).any(|w| w[0] >> 1 == w[1] >> 1) {
                return Err(Conflict);
            }
            let root = Lit(comp[0]);
            for &c in &comp[1..] {
                changed |= self.union(root, Lit(c))?;
            }
        }
        Ok(changed)
    }

    /// Removes syntactic duplicates (clauses and at-mosts).
    fn dedup_pass(&mut self) -> bool {
        let mut seen: HashSet<Vec<u64>> = HashSet::new();
        let mut changed = false;
        for slot in &mut self.cons {
            let Some(con) = slot else { continue };
            let key: Vec<u64> = match con {
                Con::Clause(lits) => std::iter::once(0u64)
                    .chain(lits.iter().map(|l| l.code() as u64))
                    .collect(),
                Con::AtMost(terms, bound) => std::iter::once(1u64)
                    .chain(std::iter::once(*bound))
                    .chain(terms.iter().flat_map(|&(a, l)| [a, l.code() as u64]))
                    .collect(),
            };
            if !seen.insert(key) {
                *slot = None;
                self.stats.removed_constraints += 1;
                changed = true;
            }
        }
        changed
    }

    /// Budgeted clause-subsumes-clause elimination via occurrence lists on
    /// the rarest literal.
    fn subsume_pass(&mut self) -> bool {
        let mut occ: HashMap<Lit, Vec<u32>> = HashMap::new();
        for (i, con) in self.cons.iter().enumerate() {
            if let Some(Con::Clause(lits)) = con {
                for l in lits {
                    occ.entry(*l).or_default().push(i as u32);
                }
            }
        }
        let mut budget = SUBSUME_BUDGET;
        let mut changed = false;
        for i in 0..self.cons.len() {
            if budget == 0 || self.time_up() {
                break;
            }
            let Some(Con::Clause(sub)) = self.cons[i].clone() else {
                continue;
            };
            let Some(rarest) = sub
                .iter()
                .min_by_key(|l| occ.get(l).map_or(0, Vec::len))
                .copied()
            else {
                continue;
            };
            let Some(candidates) = occ.get(&rarest) else {
                continue;
            };
            for &j in candidates {
                let j = j as usize;
                if j == i {
                    continue;
                }
                let Some(Con::Clause(sup)) = &self.cons[j] else {
                    continue;
                };
                if sup.len() < sub.len() {
                    continue;
                }
                budget = budget.saturating_sub((sub.len() + sup.len()) as u64);
                if is_subset(&sub, sup) {
                    self.cons[j] = None;
                    self.stats.removed_constraints += 1;
                    changed = true;
                }
                if budget == 0 {
                    break;
                }
            }
        }
        changed
    }

    /// Grows at-most-one cliques from pairwise exclusions and replaces the
    /// covered binary clauses.
    fn clique_pass(&mut self) -> bool {
        let mut adj: BTreeMap<Lit, BTreeSet<Lit>> = BTreeMap::new();
        let edge = |a: Lit, b: Lit, adj: &mut BTreeMap<Lit, BTreeSet<Lit>>| {
            adj.entry(a).or_default().insert(b);
            adj.entry(b).or_default().insert(a);
        };
        // (idx, x, y): clause #idx forbids x ∧ y.
        let mut binaries: Vec<(usize, Lit, Lit)> = Vec::new();
        for (i, con) in self.cons.iter().enumerate() {
            match con {
                Some(Con::Clause(lits)) => {
                    if let [a, b] = lits.as_slice() {
                        edge(!*a, !*b, &mut adj);
                        binaries.push((i, !*a, !*b));
                    }
                }
                Some(Con::AtMost(terms, 1))
                    if terms.len() <= CLIQUE_SEED_LIMIT && terms.iter().all(|&(a, _)| a == 1) =>
                {
                    for x in 0..terms.len() {
                        for y in x + 1..terms.len() {
                            edge(terms[x].1, terms[y].1, &mut adj);
                        }
                    }
                }
                _ => {}
            }
        }
        let mut emitted: Vec<BTreeSet<Lit>> = Vec::new();
        let mut changed = false;
        for (idx, a, b) in binaries {
            if self.time_up() {
                break;
            }
            if emitted.iter().any(|s| s.contains(&a) && s.contains(&b)) {
                self.cons[idx] = None;
                self.stats.removed_constraints += 1;
                changed = true;
                continue;
            }
            let (Some(na), Some(nb)) = (adj.get(&a), adj.get(&b)) else {
                continue;
            };
            let mut clique: BTreeSet<Lit> = [a, b].into_iter().collect();
            for &c in na.intersection(nb) {
                if clique
                    .iter()
                    .all(|m| adj.get(&c).is_some_and(|n| n.contains(m)))
                {
                    clique.insert(c);
                }
            }
            if clique.len() >= 3 {
                self.cons.push(Some(Con::AtMost(
                    clique.iter().map(|&l| (1, l)).collect(),
                    1,
                )));
                emitted.push(clique);
                self.stats.cliques += 1;
                self.cons[idx] = None;
                self.stats.removed_constraints += 1;
                changed = true;
            }
        }
        changed
    }
}

fn is_subset(sub: &[Lit], sup: &[Lit]) -> bool {
    // Both sorted.
    let mut it = sup.iter();
    'outer: for l in sub {
        for s in it.by_ref() {
            match s.cmp(l) {
                std::cmp::Ordering::Less => continue,
                std::cmp::Ordering::Equal => continue 'outer,
                std::cmp::Ordering::Greater => return false,
            }
        }
        return false;
    }
    true
}

/// Failed-literal probing: a counter-based unit propagator with an undo
/// trail, run over a snapshot of the simplified constraints.
struct Probe {
    clauses: Vec<Vec<Lit>>,
    amts: Vec<(Vec<(u64, Lit)>, u64)>,
    /// Per literal code: `(constraint id, coefficient)`; clause ids are
    /// `0..clauses.len()`, at-most ids follow. Coefficient is 0 for
    /// clauses.
    occ: Vec<Vec<(u32, u64)>>,
    val: Vec<i8>,
    trail: Vec<Lit>,
    cl_false: Vec<u32>,
    cl_true: Vec<u32>,
    am_sum: Vec<u64>,
    steps: u64,
    budget: u64,
    deadline: Option<Instant>,
    polls: u32,
}

impl Probe {
    fn new(work: &Work, budget: u64) -> Self {
        let n = work.value.len();
        let mut clauses = Vec::new();
        let mut amts = Vec::new();
        for con in work.cons.iter().flatten() {
            match con {
                Con::Clause(lits) => clauses.push(lits.clone()),
                Con::AtMost(terms, bound) => amts.push((terms.clone(), *bound)),
            }
        }
        let nc = clauses.len();
        let mut occ: Vec<Vec<(u32, u64)>> = vec![Vec::new(); 2 * n];
        for (i, c) in clauses.iter().enumerate() {
            for l in c {
                occ[l.code()].push((i as u32, 0));
            }
        }
        for (i, (terms, _)) in amts.iter().enumerate() {
            for (a, l) in terms {
                occ[l.code()].push(((nc + i) as u32, *a));
            }
        }
        Probe {
            cl_false: vec![0; clauses.len()],
            cl_true: vec![0; clauses.len()],
            am_sum: vec![0; amts.len()],
            clauses,
            amts,
            occ,
            val: work.value.clone(),
            trail: Vec::new(),
            steps: 0,
            budget,
            deadline: work.deadline,
            polls: 0,
        }
    }

    fn lit_true(&self, l: Lit) -> Option<bool> {
        match self.val[l.var().index()] {
            UNASSIGNED => None,
            v => Some((v == 1) != l.is_negative()),
        }
    }

    /// Assigns `l` and propagates. Returns `false` on conflict. Does not
    /// undo — callers snapshot `trail.len()` and call [`Probe::undo`].
    ///
    /// Counter updates for one literal are never interrupted (a conflict
    /// or exhausted budget takes effect only *between* literals), so the
    /// trail always matches the counters exactly and `undo` is safe.
    fn run(&mut self, l: Lit) -> bool {
        let mut queue: VecDeque<Lit> = VecDeque::new();
        queue.push_back(l);
        while let Some(l) = queue.pop_front() {
            match self.lit_true(l) {
                Some(true) => continue,
                Some(false) => return false,
                None => {}
            }
            if self.steps >= self.budget {
                return true; // budget out: treat as "no conflict"
            }
            if let Some(d) = self.deadline {
                self.polls += 1;
                if self.polls & 0xff == 0 && Instant::now() >= d {
                    self.budget = 0;
                    return true;
                }
            }
            self.val[l.var().index()] = if l.is_negative() { 0 } else { 1 };
            self.trail.push(l);
            let nc = self.clauses.len();
            let mut conflict = false;
            // The literal is now true.
            for k in 0..self.occ[l.code()].len() {
                let (c, coeff) = self.occ[l.code()][k];
                let c = c as usize;
                self.steps += 1;
                if c < nc {
                    self.cl_true[c] += 1;
                } else {
                    let a = c - nc;
                    self.am_sum[a] += coeff;
                    let (terms, bound) = &self.amts[a];
                    if self.am_sum[a] > *bound {
                        conflict = true;
                    } else if !conflict {
                        let slack = *bound - self.am_sum[a];
                        for &(w, t) in terms {
                            if w > slack && self.lit_true(t).is_none() {
                                queue.push_back(!t);
                            }
                        }
                        self.steps += terms.len() as u64;
                    }
                }
            }
            // Its negation is now false. (A false literal in an at-most
            // only loosens it; only clauses can propagate here.)
            let neg = (!l).code();
            for k in 0..self.occ[neg].len() {
                let (c, _) = self.occ[neg][k];
                let c = c as usize;
                self.steps += 1;
                if c < nc {
                    self.cl_false[c] += 1;
                    if conflict || self.cl_true[c] > 0 {
                        continue;
                    }
                    let len = self.clauses[c].len() as u32;
                    if self.cl_false[c] == len {
                        conflict = true;
                    } else if self.cl_false[c] == len - 1 {
                        if let Some(&u) = self.clauses[c]
                            .iter()
                            .find(|t| self.lit_true(**t).is_none())
                        {
                            queue.push_back(u);
                        }
                        self.steps += len as u64;
                    }
                }
            }
            if conflict {
                return false;
            }
        }
        true
    }

    fn undo(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let l = self.trail.pop().expect("trail above mark");
            self.val[l.var().index()] = UNASSIGNED;
            let nc = self.clauses.len();
            for &(c, coeff) in &self.occ[l.code()] {
                let c = c as usize;
                if c < nc {
                    self.cl_true[c] -= 1;
                } else {
                    self.am_sum[c - nc] -= coeff;
                }
            }
            for &(c, _) in &self.occ[(!l).code()] {
                let c = c as usize;
                if c < nc {
                    self.cl_false[c] -= 1;
                }
            }
        }
    }
}

/// Runs the probing phase. Returns the root-fixed literals, or `Err` when
/// both polarities of some variable fail (the model is infeasible).
fn probe_phase(work: &mut Work, budget: u64) -> Result<Vec<Lit>, Conflict> {
    let mut probe = Probe::new(work, budget);
    // Highest-occurrence variables first: their assignments propagate the
    // furthest, so a failed literal prunes the most.
    let n = work.value.len();
    let mut order: Vec<(usize, usize)> = (0..n)
        .filter(|&v| probe.val[v] == UNASSIGNED)
        .map(|v| {
            let occ = probe.occ[2 * v].len() + probe.occ[2 * v + 1].len();
            (occ, v)
        })
        .filter(|&(occ, _)| occ > 0)
        .collect();
    order.sort_by(|a, b| b.0.cmp(&a.0).then(a.1.cmp(&b.1)));

    let mut fixed: Vec<Lit> = Vec::new();
    for (_, v) in order {
        if probe.steps >= probe.budget {
            break;
        }
        if probe.val[v] != UNASSIGNED {
            continue;
        }
        work.stats.probed_vars += 1;
        for lit in [Lit::positive(Var(v as u32)), Lit::negative(Var(v as u32))] {
            if probe.val[v] != UNASSIGNED {
                break;
            }
            let mark = probe.trail.len();
            let ok = probe.run(lit);
            probe.undo(mark);
            if !ok {
                // `lit` fails: ¬lit holds at the root. The root-level
                // propagation is kept on the trail (not undone), so later
                // probes run against the strengthened root state.
                work.stats.failed_literals += 1;
                if !probe.run(!lit) {
                    return Err(Conflict);
                }
                let new_roots: Vec<Lit> = probe.trail[fixed.len()..].to_vec();
                fixed.extend(new_roots);
            }
        }
    }
    Ok(fixed)
}

/// Presolves `model` into an equivalent reduced model.
///
/// The reduction is deterministic: the same model and configuration always
/// produce the same reduced model, so the portfolio's "presolve once,
/// share across workers" scheme keeps `threads = 1` runs reproducible.
pub fn presolve(model: &Model, config: &PresolveConfig) -> Presolved {
    let start = Instant::now();
    let n = model.num_vars();
    let mut work = Work::new(n, config.deadline);
    work.stats.vars_before = n as u64;
    work.stats.constraints_before = model.constraints().len() as u64;

    let infeasible = |mut stats: PresolveStats, start: Instant| {
        stats.elapsed = start.elapsed();
        Presolved::Infeasible { stats }
    };

    for c in model.constraints() {
        for nc in normalize(c) {
            if work.accept_norm(nc).is_err() {
                return infeasible(work.stats, start);
            }
        }
    }

    // Main simplification loop.
    let mut probed = false;
    loop {
        let round_result = (|| -> Result<bool, Conflict> {
            work.stats.rounds += 1;
            let mut changed = work.propagate()?;
            if work.time_up() {
                return Ok(false);
            }
            changed |= work.simplify_all()?;
            changed |= work.propagate()?;
            if work.time_up() {
                return Ok(false);
            }
            changed |= work.equiv_pass()?;
            if changed {
                return Ok(true);
            }
            changed |= work.dedup_pass();
            changed |= work.subsume_pass();
            changed |= work.clique_pass();
            Ok(changed)
        })();
        match round_result {
            Err(Conflict) => return infeasible(work.stats, start),
            Ok(true) if work.stats.rounds < MAX_ROUNDS && !work.out_of_time => continue,
            Ok(_) => {}
        }
        let too_small = model.num_vars() < config.probe_min_vars;
        if probed || config.probe_budget == 0 || too_small || work.out_of_time {
            break;
        }
        probed = true;
        match probe_phase(&mut work, config.probe_budget) {
            Err(Conflict) => return infeasible(work.stats, start),
            Ok(fixed) => {
                if fixed.is_empty() {
                    break;
                }
                for l in fixed {
                    work.enqueue(l);
                }
                // Loop once more to apply the probe fixings.
            }
        }
    }

    match emit(model, &mut work) {
        Err(Conflict) => infeasible(work.stats, start),
        Ok((reduced, reconstruction)) => {
            let mut stats = work.stats;
            stats.vars_after = reduced.num_vars() as u64;
            stats.constraints_after = reduced.constraints().len() as u64;
            stats.fixed_vars = reconstruction
                .dispositions
                .iter()
                .filter(|d| matches!(d, Disposition::Fixed { .. }))
                .count() as u64;
            stats.elapsed = start.elapsed();
            Presolved::Reduced {
                model: reduced,
                reconstruction,
                stats,
            }
        }
    }
}

/// Final phase: free-variable elimination, dense renumbering, and emission
/// of the reduced [`Model`].
fn emit(model: &Model, work: &mut Work) -> Result<(Model, Reconstruction), Conflict> {
    let n = model.num_vars();
    // Flush any pending units before counting.
    work.propagate()?;

    // Substituted objective, keyed by representative variable.
    let mut obj_terms: BTreeMap<Var, i64> = BTreeMap::new();
    let mut obj_constant: i64 = 0;
    let has_objective = model.objective().is_some();
    if let Some(obj) = model.objective() {
        obj_constant = obj.constant();
        for &(c, v) in obj.terms() {
            let r = work.find(v.lit());
            match work.value[r.var().index()] {
                UNASSIGNED => {
                    if r.is_negative() {
                        // c·v = c·(1 - rep) = c - c·rep
                        obj_constant += c;
                        *obj_terms.entry(r.var()).or_insert(0) -= c;
                    } else {
                        *obj_terms.entry(r.var()).or_insert(0) += c;
                    }
                }
                val => {
                    let v_true = (val == 1) != r.is_negative();
                    if v_true {
                        obj_constant += c;
                    }
                }
            }
        }
        obj_terms.retain(|_, c| *c != 0);
    }

    // Representative variables that still appear in some constraint.
    let mut occurs = vec![false; n];
    for con in work.cons.iter().flatten() {
        match con {
            Con::Clause(lits) => {
                for l in lits {
                    occurs[l.var().index()] = true;
                }
            }
            Con::AtMost(terms, _) => {
                for (_, l) in terms {
                    occurs[l.var().index()] = true;
                }
            }
        }
    }
    // A representative constrained by nothing is free: fix it to its
    // objective-preferred polarity (false when indifferent). This is sound
    // for feasibility and preserves the optimum — but unlike unit/probing
    // fixings it is a *choice*, not an entailment, which `Reconstruction`
    // must remember for assumption mapping.
    let mut free_fixed = vec![false; n];
    for (v, &occ) in occurs.iter().enumerate() {
        let var = Var(v as u32);
        let is_rep = work.find(var.lit()) == var.lit();
        if is_rep && work.value[v] == UNASSIGNED && !occ {
            free_fixed[v] = true;
            let coeff = obj_terms.get(&var).copied().unwrap_or(0);
            work.value[v] = i8::from(coeff < 0);
            if coeff != 0 && coeff < 0 {
                obj_constant += coeff;
            }
            obj_terms.remove(&var);
        }
    }

    // Dense renumbering of surviving representatives, in index order.
    let mut reduced = Model::new();
    let mut new_var: Vec<Option<Var>> = vec![None; n];
    for (v, slot) in new_var.iter_mut().enumerate() {
        let var = Var(v as u32);
        if work.find(var.lit()) == var.lit() && work.value[v] == UNASSIGNED {
            *slot = Some(reduced.new_var());
        }
    }
    let map_lit = |l: Lit, new_var: &[Option<Var>]| -> Lit {
        let nv = new_var[l.var().index()].expect("surviving rep has a new index");
        if l.is_negative() {
            Lit::negative(nv)
        } else {
            Lit::positive(nv)
        }
    };

    for con in work.cons.iter().flatten() {
        match con {
            Con::Clause(lits) => {
                reduced.add_clause(lits.iter().map(|&l| map_lit(l, &new_var)));
            }
            Con::AtMost(terms, bound) => {
                let mut expr = LinExpr::new();
                let mut rhs = i128::from(*bound);
                for &(a, l) in terms {
                    let nv = new_var[l.var().index()].expect("surviving rep has a new index");
                    if l.is_negative() {
                        // a·¬v = a - a·v
                        rhs -= i128::from(a);
                        expr.add_term(-(a as i64), nv);
                    } else {
                        expr.add_term(a as i64, nv);
                    }
                }
                reduced.add_le(expr, rhs.clamp(i64::MIN as i128, i64::MAX as i128) as i64);
            }
        }
    }

    if has_objective {
        let mut expr = LinExpr::new();
        for (v, c) in &obj_terms {
            expr.add_term(*c, new_var[v.index()].expect("objective var survives"));
        }
        expr.add_constant(obj_constant);
        reduced.minimize(expr);
    }

    // Branch hints follow their representative, with phase flipped when the
    // representative is the negated literal.
    for &(v, priority, phase) in model.branch_hints() {
        let r = work.find(v.lit());
        if let Some(nv) = new_var[r.var().index()] {
            reduced.suggest_branch(nv, priority, phase != r.is_negative());
        }
    }

    let mut dispositions = Vec::with_capacity(n);
    for v in 0..n {
        let r = work.find(Var(v as u32).lit());
        let d = match work.value[r.var().index()] {
            UNASSIGNED => Disposition::Mapped {
                var: new_var[r.var().index()].expect("unassigned rep survives"),
                negated: r.is_negative(),
            },
            val => Disposition::Fixed {
                value: (val == 1) != r.is_negative(),
                entailed: !free_fixed[r.var().index()],
            },
        };
        dispositions.push(d);
    }

    Ok((reduced, Reconstruction { dispositions }))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::Model;

    fn reduced(p: &Presolved) -> (&Model, &Reconstruction, &PresolveStats) {
        match p {
            Presolved::Reduced {
                model,
                reconstruction,
                stats,
            } => (model, reconstruction, stats),
            Presolved::Infeasible { .. } => panic!("expected reduced, got infeasible"),
        }
    }

    #[test]
    fn propagation_fixes_chain() {
        let mut m = Model::new();
        let vs = m.new_vars(5);
        m.fix(vs[0], true);
        for w in vs.windows(2) {
            m.add_implies(w[0].lit(), w[1].lit());
        }
        let p = presolve(&m, &PresolveConfig::default());
        let (red, recon, stats) = reduced(&p);
        assert_eq!(red.num_vars(), 0);
        assert_eq!(stats.fixed_vars, 5);
        let full = recon.expand(&Assignment::from_values(vec![]));
        assert!(vs.iter().all(|&v| full.value(v)));
    }

    #[test]
    fn equivalence_merges_implication_cycles() {
        let mut m = Model::new();
        let a = m.new_var();
        let b = m.new_var();
        let c = m.new_var();
        m.add_implies(a.lit(), b.lit());
        m.add_implies(b.lit(), c.lit());
        m.add_implies(c.lit(), a.lit());
        // One extra constraint so the class is not free-eliminated away
        // trivially: a ∨ d.
        let d = m.new_var();
        m.add_clause([a.lit(), d.lit()]);
        let p = presolve(&m, &PresolveConfig::default());
        let (red, recon, stats) = reduced(&p);
        assert!(stats.aliased_vars >= 2, "{stats:?}");
        assert!(red.num_vars() <= 2);
        // Any reduced solution must expand so that a == b == c.
        let vals = Assignment::from_values(vec![true; red.num_vars()]);
        let full = recon.expand(&vals);
        assert_eq!(full.value(a), full.value(b));
        assert_eq!(full.value(b), full.value(c));
    }

    #[test]
    fn duplicate_and_subsumed_clauses_removed() {
        let mut m = Model::new();
        let vs = m.new_vars(4);
        m.add_clause([vs[0].lit(), vs[1].lit()]);
        m.add_clause([vs[0].lit(), vs[1].lit()]); // duplicate
        m.add_clause([vs[0].lit(), vs[1].lit(), vs[2].lit()]); // subsumed
        m.add_clause([vs[2].lit(), vs[3].lit()]);
        let p = presolve(&m, &PresolveConfig::default());
        let (red, _, stats) = reduced(&p);
        assert!(stats.removed_constraints >= 2, "{stats:?}");
        assert_eq!(red.constraints().len(), 2);
    }

    #[test]
    fn clique_detection_builds_at_most_one() {
        let mut m = Model::new();
        let vs = m.new_vars(4);
        // Pairwise exclusion between all four variables, as binary
        // clauses: should collapse into a single at-most-one.
        for i in 0..4 {
            for j in i + 1..4 {
                m.add_clause([!vs[i].lit(), !vs[j].lit()]);
            }
        }
        // Anchor so the variables stay constrained.
        m.add_clause(vs.iter().map(|v| v.lit()));
        let p = presolve(&m, &PresolveConfig::default());
        let (red, _, stats) = reduced(&p);
        assert!(stats.cliques >= 1, "{stats:?}");
        assert!(
            red.constraints().len() <= 3,
            "{} constraints left",
            red.constraints().len()
        );
    }

    #[test]
    fn probing_fixes_forced_variable() {
        let mut m = Model::new();
        let x = m.new_var();
        let y = m.new_var();
        let z = m.new_var();
        // x → y, x → ¬y: probing x=true conflicts, so x is fixed false.
        m.add_implies(x.lit(), y.lit());
        m.add_implies(x.lit(), !y.lit());
        m.add_clause([x.lit(), z.lit()]); // then z is forced true
        let cfg = PresolveConfig {
            probe_min_vars: 0, // the model is tiny; probe it anyway
            ..PresolveConfig::default()
        };
        let p = presolve(&m, &cfg);
        let (red, recon, stats) = reduced(&p);
        assert!(stats.failed_literals >= 1, "{stats:?}");
        assert_eq!(red.num_vars(), 0, "everything should collapse");
        let full = recon.expand(&Assignment::from_values(vec![]));
        assert!(!full.value(x));
        assert!(full.value(z));
    }

    #[test]
    fn probing_both_polarities_failing_is_infeasible() {
        let mut m = Model::new();
        let x = m.new_var();
        let y = m.new_var();
        m.add_implies(x.lit(), y.lit());
        m.add_implies(x.lit(), !y.lit());
        m.add_implies(!x.lit(), y.lit());
        m.add_implies(!x.lit(), !y.lit());
        let cfg = PresolveConfig {
            probe_min_vars: 0,
            ..PresolveConfig::default()
        };
        let p = presolve(&m, &cfg);
        assert!(matches!(p, Presolved::Infeasible { .. }));
    }

    #[test]
    fn small_models_skip_probing_by_default() {
        // Same forced-variable shape as probing_fixes_forced_variable,
        // but under the default config the model is far below
        // `probe_min_vars`, so the probe pass must not run at all.
        let mut m = Model::new();
        let x = m.new_var();
        let y = m.new_var();
        let z = m.new_var();
        m.add_implies(x.lit(), y.lit());
        m.add_implies(x.lit(), !y.lit());
        m.add_clause([x.lit(), z.lit()]);
        let p = presolve(&m, &PresolveConfig::default());
        let (_, _, stats) = reduced(&p);
        assert_eq!(stats.probed_vars, 0, "{stats:?}");
        assert_eq!(stats.failed_literals, 0, "{stats:?}");
    }

    #[test]
    fn free_variables_follow_the_objective() {
        let mut m = Model::new();
        let a = m.new_var();
        let b = m.new_var();
        let mut obj = LinExpr::new();
        obj.add_term(3, a);
        obj.add_term(-2, b);
        m.minimize(obj);
        let p = presolve(&m, &PresolveConfig::default());
        let (red, recon, _) = reduced(&p);
        assert_eq!(red.num_vars(), 0);
        assert_eq!(red.objective().map(|o| o.constant()), Some(-2));
        let full = recon.expand(&Assignment::from_values(vec![]));
        assert!(!full.value(a));
        assert!(full.value(b));
    }

    #[test]
    fn infeasible_root_detected() {
        let mut m = Model::new();
        let x = m.new_var();
        m.fix(x, true);
        m.fix(x, false);
        assert!(matches!(
            presolve(&m, &PresolveConfig::default()),
            Presolved::Infeasible { .. }
        ));
    }

    #[test]
    fn expired_deadline_still_emits_a_sound_model() {
        let mut m = Model::new();
        let vs = m.new_vars(20);
        for w in vs.windows(2) {
            m.add_clause([w[0].lit(), w[1].lit()]);
        }
        let cfg = PresolveConfig {
            deadline: Some(Instant::now() - Duration::from_millis(1)),
            ..PresolveConfig::default()
        };
        let p = presolve(&m, &cfg);
        let (red, recon, _) = reduced(&p);
        // Nothing is guaranteed to be reduced, but the model must still be
        // equivalent: expanding any solution must satisfy the original.
        assert_eq!(recon.num_original_vars(), 20);
        assert!(red.num_vars() <= 20);
    }
}
