//! Independent reverse-unit-propagation (RUP) proof checker.
//!
//! This module certifies `Infeasible` verdicts without trusting the
//! search engine. It shares **no code** with [`crate::engine`]: the only
//! inputs it believes are the [`Model`] itself and the normal-form
//! translation in [`crate::normalize`] (which is part of the model
//! semantics, exercised directly by the brute-force differential tests).
//! Everything else — learnt clauses, imported clauses, presolve facts —
//! must be *re-derived* here before it is accepted.
//!
//! The propagation machinery is deliberately different from the engine's:
//! clauses are indexed by full occurrence lists and scanned linearly
//! (no two-watched-literal scheme, no lazy watch repair), and PB at-most
//! constraints keep an exact true-weight counter updated on every
//! assignment (no trail-position-based explanation logic). A bug in the
//! engine's clever data structures therefore cannot be mirrored here.
//!
//! Checking a proof: the database starts as the normalised model. Each
//! `Add` step is verified by RUP — assert the negation of every literal
//! in the clause and propagate to fixpoint; the step is valid iff this
//! yields a conflict — then attached permanently. Each `Delete` step
//! removes a previously added clause (matched by its sorted literal set).
//! The proof is valid iff the database propagates to a root conflict,
//! i.e. the empty clause is derived. Soundness does not depend on the
//! engine at all: every accepted step is entailed by the model, so a
//! derived contradiction refutes the model itself.

use crate::model::{Lit, Model};
use crate::normalize::{normalize, NormConstraint};
use crate::proof::{ProofLog, StepKind};
use std::collections::HashMap;
use std::time::Instant;

/// Result of replaying a proof against a model.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CheckOutcome {
    /// Every step was re-derived and the database reached a root
    /// contradiction: the model is certifiably infeasible.
    Valid {
        /// Number of proof steps replayed.
        steps: usize,
    },
    /// A step could not be verified. The proof (and the verdict it
    /// supports) must not be trusted.
    Invalid {
        /// Index of the offending step (`proof.len()` for the final
        /// contradiction check).
        step: usize,
        /// Human-readable description of the failure.
        detail: String,
    },
    /// The deadline expired mid-check; no judgement is made.
    OutOfTime,
}

const UNASSIGNED: i8 = 2;

/// How often (in propagation events) the deadline is polled.
const DEADLINE_POLL: u64 = 4096;

struct CClause {
    lits: Vec<Lit>,
    active: bool,
}

struct CLinear {
    terms: Vec<(u64, Lit)>,
    bound: u64,
    /// Weight of currently-true terms.
    sum_true: u64,
}

/// The checker's clause/linear database with a trail-based undo stack.
struct CheckerDb {
    /// Per-variable value: 0 = false, 1 = true, 2 = unassigned.
    assign: Vec<i8>,
    clauses: Vec<CClause>,
    /// For each literal code, the clauses containing that literal.
    occ: Vec<Vec<u32>>,
    linears: Vec<CLinear>,
    /// For each literal code, `(linear index, weight)` pairs for the
    /// linears containing that literal.
    lin_occ: Vec<Vec<(u32, u64)>>,
    trail: Vec<Lit>,
    qhead: usize,
    /// Set once a root-level contradiction is derived.
    refuted: bool,
    /// Sorted-literal-codes key → active clause indices, for deletes.
    by_key: HashMap<Vec<usize>, Vec<u32>>,
    props: u64,
}

/// Outcome of a bounded propagation run.
enum Prop {
    Fixpoint,
    Conflict,
    OutOfTime,
}

impl CheckerDb {
    fn new(num_vars: usize) -> Self {
        CheckerDb {
            assign: vec![UNASSIGNED; num_vars],
            clauses: Vec::new(),
            occ: vec![Vec::new(); 2 * num_vars],
            linears: Vec::new(),
            lin_occ: vec![Vec::new(); 2 * num_vars],
            trail: Vec::new(),
            qhead: 0,
            refuted: false,
            by_key: HashMap::new(),
            props: 0,
        }
    }

    fn value(&self, l: Lit) -> i8 {
        let v = self.assign[l.var().index()];
        if v == UNASSIGNED {
            UNASSIGNED
        } else if l.is_negative() {
            1 - v
        } else {
            v
        }
    }

    /// Makes `l` true and updates every linear counter containing `l`.
    /// Returns `false` on an immediate linear overflow conflict.
    fn enqueue(&mut self, l: Lit) -> bool {
        debug_assert_eq!(self.value(l), UNASSIGNED);
        self.assign[l.var().index()] = if l.is_negative() { 0 } else { 1 };
        self.trail.push(l);
        let mut ok = true;
        for i in 0..self.lin_occ[l.code()].len() {
            let (li, w) = self.lin_occ[l.code()][i];
            let lin = &mut self.linears[li as usize];
            lin.sum_true += w;
            if lin.sum_true > lin.bound {
                ok = false;
            }
        }
        ok
    }

    /// Unwinds the trail (and linear counters) back to length `mark`.
    fn undo_to(&mut self, mark: usize) {
        while self.trail.len() > mark {
            let l = self.trail.pop().expect("trail non-empty");
            self.assign[l.var().index()] = UNASSIGNED;
            for i in 0..self.lin_occ[l.code()].len() {
                let (li, w) = self.lin_occ[l.code()][i];
                self.linears[li as usize].sum_true -= w;
            }
        }
        self.qhead = self.trail.len().min(self.qhead);
    }

    /// Propagates to fixpoint from the current queue head.
    fn propagate(&mut self, deadline: Option<Instant>) -> Prop {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.props += 1;
            if self.props.is_multiple_of(DEADLINE_POLL) {
                if let Some(d) = deadline {
                    if Instant::now() >= d {
                        return Prop::OutOfTime;
                    }
                }
            }

            // Clauses that contain ¬p may have become unit or empty.
            let falsified = (!p).code();
            for i in 0..self.occ[falsified].len() {
                let ci = self.occ[falsified][i] as usize;
                if !self.clauses[ci].active {
                    continue;
                }
                let mut unassigned: Option<Lit> = None;
                let mut n_unassigned = 0;
                let mut satisfied = false;
                for &l in &self.clauses[ci].lits {
                    match self.value(l) {
                        1 => {
                            satisfied = true;
                            break;
                        }
                        UNASSIGNED => {
                            n_unassigned += 1;
                            unassigned = Some(l);
                        }
                        _ => {}
                    }
                }
                if satisfied {
                    continue;
                }
                match n_unassigned {
                    0 => return Prop::Conflict,
                    1 => {
                        let l = unassigned.expect("unit literal");
                        if !self.enqueue(l) {
                            return Prop::Conflict;
                        }
                    }
                    _ => {}
                }
            }

            // Linears containing p itself: the counter rose when p was
            // enqueued; check overflow and force out high-weight terms.
            for i in 0..self.lin_occ[p.code()].len() {
                let li = self.lin_occ[p.code()][i].0 as usize;
                match self.force_linear(li) {
                    Prop::Fixpoint => {}
                    other => return other,
                }
            }
        }
        Prop::Fixpoint
    }

    /// Checks one linear for overflow and forces false any unassigned
    /// term whose weight no longer fits under the bound.
    fn force_linear(&mut self, li: usize) -> Prop {
        let (bound, sum_true) = {
            let lin = &self.linears[li];
            (lin.bound, lin.sum_true)
        };
        if sum_true > bound {
            return Prop::Conflict;
        }
        let slack = bound - sum_true;
        let mut to_force: Vec<Lit> = Vec::new();
        for &(a, l) in &self.linears[li].terms {
            if a > slack && self.value(l) == UNASSIGNED {
                to_force.push(!l);
            }
        }
        for l in to_force {
            if self.value(l) == UNASSIGNED && !self.enqueue(l) {
                return Prop::Conflict;
            }
        }
        Prop::Fixpoint
    }

    /// Asserts a literal at root level. Returns `false` on conflict.
    fn assert_root(&mut self, l: Lit, deadline: Option<Instant>) -> Prop {
        match self.value(l) {
            1 => Prop::Fixpoint,
            0 => Prop::Conflict,
            _ => {
                if !self.enqueue(l) {
                    return Prop::Conflict;
                }
                self.propagate(deadline)
            }
        }
    }

    fn key_of(lits: &[Lit]) -> Vec<usize> {
        let mut key: Vec<usize> = lits.iter().map(|l| l.code()).collect();
        key.sort_unstable();
        key
    }

    /// Attaches a clause permanently (after its RUP check). Empty and
    /// unit clauses fold into the root state; larger clauses join the
    /// database and are scanned once in case they are already asserting.
    fn attach(&mut self, lits: &[Lit], deadline: Option<Instant>) -> Prop {
        match lits.len() {
            0 => {
                self.refuted = true;
                Prop::Fixpoint
            }
            1 => match self.assert_root(lits[0], deadline) {
                Prop::Conflict => {
                    self.refuted = true;
                    Prop::Fixpoint
                }
                other => other,
            },
            _ => {
                let ci = self.clauses.len() as u32;
                for &l in lits {
                    self.occ[l.code()].push(ci);
                }
                self.clauses.push(CClause {
                    lits: lits.to_vec(),
                    active: true,
                });
                self.by_key.entry(Self::key_of(lits)).or_default().push(ci);
                // The new clause may already be unit or empty under the
                // current root assignment.
                let mut unassigned: Option<Lit> = None;
                let mut n_unassigned = 0;
                let mut satisfied = false;
                for &l in lits {
                    match self.value(l) {
                        1 => {
                            satisfied = true;
                            break;
                        }
                        UNASSIGNED => {
                            n_unassigned += 1;
                            unassigned = Some(l);
                        }
                        _ => {}
                    }
                }
                if satisfied {
                    return Prop::Fixpoint;
                }
                match n_unassigned {
                    0 => {
                        self.refuted = true;
                        Prop::Fixpoint
                    }
                    1 => match self.assert_root(unassigned.expect("unit"), deadline) {
                        Prop::Conflict => {
                            self.refuted = true;
                            Prop::Fixpoint
                        }
                        other => other,
                    },
                    _ => Prop::Fixpoint,
                }
            }
        }
    }

    /// Deactivates one clause matching the literal set. Returns whether
    /// a match existed.
    fn delete(&mut self, lits: &[Lit]) -> bool {
        let key = Self::key_of(lits);
        if let Some(indices) = self.by_key.get_mut(&key) {
            while let Some(ci) = indices.pop() {
                if self.clauses[ci as usize].active {
                    self.clauses[ci as usize].active = false;
                    return true;
                }
            }
        }
        false
    }

    /// RUP test: is `lits` a consequence of the database by unit
    /// propagation? Leaves the database exactly as it found it.
    fn rup(&mut self, lits: &[Lit], deadline: Option<Instant>) -> Result<bool, ()> {
        if self.refuted {
            return Ok(true);
        }
        let mark = self.trail.len();
        let qmark = self.qhead;
        let mut conflict = false;
        for &l in lits {
            match self.value(l) {
                1 => {
                    // The clause is already satisfied at root: trivially
                    // entailed.
                    conflict = true;
                    break;
                }
                0 => {}
                _ => {
                    if !self.enqueue(!l) {
                        conflict = true;
                        break;
                    }
                }
            }
        }
        if !conflict {
            match self.propagate(deadline) {
                Prop::Conflict => conflict = true,
                Prop::Fixpoint => {}
                Prop::OutOfTime => {
                    self.undo_to(mark);
                    self.qhead = qmark;
                    return Err(());
                }
            }
        }
        self.undo_to(mark);
        self.qhead = qmark;
        Ok(conflict)
    }

    /// Loads the normalised model. Returns `false` on deadline expiry.
    fn load_model(&mut self, model: &Model, deadline: Option<Instant>) -> bool {
        for c in model.constraints() {
            if self.refuted {
                return true;
            }
            for nc in normalize(c) {
                match nc {
                    NormConstraint::Unit(l) => match self.assert_root(l, deadline) {
                        Prop::Conflict => self.refuted = true,
                        Prop::OutOfTime => return false,
                        Prop::Fixpoint => {}
                    },
                    NormConstraint::Clause(lits) => match self.attach(&lits, deadline) {
                        Prop::Conflict => self.refuted = true,
                        Prop::OutOfTime => return false,
                        Prop::Fixpoint => {}
                    },
                    NormConstraint::AtMost { terms, bound } => {
                        let li = self.linears.len() as u32;
                        let mut sum_true = 0;
                        for &(a, l) in &terms {
                            self.lin_occ[l.code()].push((li, a));
                            if self.value(l) == 1 {
                                sum_true += a;
                            }
                        }
                        self.linears.push(CLinear {
                            terms,
                            bound,
                            sum_true,
                        });
                        match self.force_linear(li as usize) {
                            Prop::Conflict => self.refuted = true,
                            Prop::OutOfTime => return false,
                            Prop::Fixpoint => match self.propagate(deadline) {
                                Prop::Conflict => self.refuted = true,
                                Prop::OutOfTime => return false,
                                Prop::Fixpoint => {}
                            },
                        }
                    }
                    NormConstraint::False => self.refuted = true,
                }
            }
        }
        true
    }
}

/// Replays `proof` against `model` and reports whether it certifies
/// infeasibility. See the module docs for the trust argument.
pub fn check_proof(model: &Model, proof: &ProofLog, deadline: Option<Instant>) -> CheckOutcome {
    if proof.truncated() {
        return CheckOutcome::Invalid {
            step: 0,
            detail: "proof log was truncated by its byte cap".to_owned(),
        };
    }
    let mut db = CheckerDb::new(model.num_vars());
    if !db.load_model(model, deadline) {
        return CheckOutcome::OutOfTime;
    }
    for (i, step) in proof.steps().iter().enumerate() {
        if db.refuted {
            // Root contradiction already derived: every later step is
            // trivially entailed, and the proof as a whole is valid.
            return CheckOutcome::Valid { steps: proof.len() };
        }
        match step.kind {
            StepKind::Add => {
                match db.rup(&step.lits, deadline) {
                    Ok(true) => {}
                    Ok(false) => {
                        return CheckOutcome::Invalid {
                            step: i,
                            detail: format!(
                                "{:?} clause of {} literals is not RUP",
                                step.origin,
                                step.lits.len()
                            ),
                        };
                    }
                    Err(()) => return CheckOutcome::OutOfTime,
                }
                match db.attach(&step.lits, deadline) {
                    Prop::OutOfTime => return CheckOutcome::OutOfTime,
                    Prop::Conflict => db.refuted = true,
                    Prop::Fixpoint => {}
                }
            }
            StepKind::Delete => {
                if !db.delete(&step.lits) {
                    return CheckOutcome::Invalid {
                        step: i,
                        detail: format!(
                            "delete of a clause ({} literals) not present in the database",
                            step.lits.len()
                        ),
                    };
                }
            }
        }
    }
    if db.refuted {
        CheckOutcome::Valid { steps: proof.len() }
    } else {
        CheckOutcome::Invalid {
            step: proof.len(),
            detail: "proof does not derive a contradiction".to_owned(),
        }
    }
}

/// Filters `candidates` down to the literals that are *provably* entailed
/// by the model under unit propagation, asserting each survivor so later
/// candidates may chain off earlier ones. Used to pre-validate
/// presolve-derived fixings before they are seeded into a certifying
/// replay: a presolve bug thus cannot plant an unsound "fact" in a proof.
pub(crate) fn entailed_units(
    model: &Model,
    candidates: &[Lit],
    deadline: Option<Instant>,
) -> Vec<Lit> {
    let mut db = CheckerDb::new(model.num_vars());
    if !db.load_model(model, deadline) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for &cand in candidates {
        if db.refuted {
            break;
        }
        match db.value(cand) {
            1 => out.push(cand),
            0 => {} // contradicts propagation: drop it
            _ => match db.rup(&[cand], deadline) {
                Ok(true) => {
                    out.push(cand);
                    match db.assert_root(cand, deadline) {
                        Prop::Conflict => db.refuted = true,
                        Prop::OutOfTime => break,
                        Prop::Fixpoint => {}
                    }
                }
                Ok(false) => {}
                Err(()) => break,
            },
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{LinExpr, Model};
    use crate::proof::{ProofLog, ProofOrigin};

    /// x ∨ y, ¬x ∨ y, x ∨ ¬y, ¬x ∨ ¬y — classic 2-variable UNSAT.
    fn tiny_unsat() -> Model {
        let mut m = Model::new();
        let x = m.new_var();
        let y = m.new_var();
        m.add_clause([x.lit(), y.lit()]);
        m.add_clause([!x.lit(), y.lit()]);
        m.add_clause([x.lit(), !y.lit()]);
        m.add_clause([!x.lit(), !y.lit()]);
        m
    }

    #[test]
    fn valid_resolution_proof_accepted() {
        let m = tiny_unsat();
        let x = crate::model::Var(0);
        let y = crate::model::Var(1);
        let mut proof = ProofLog::new(1 << 20);
        // (y) follows from the first two clauses by RUP; then (¬y), then ⊥.
        proof.add(&[y.lit()], ProofOrigin::Learnt);
        proof.add(&[!y.lit()], ProofOrigin::Learnt);
        let _ = x;
        assert!(matches!(
            check_proof(&m, &proof, None),
            CheckOutcome::Valid { .. }
        ));
    }

    #[test]
    fn non_rup_step_rejected() {
        let mut m = Model::new();
        let x = m.new_var();
        let y = m.new_var();
        m.add_clause([x.lit(), y.lit()]);
        let mut proof = ProofLog::new(1 << 20);
        // (x) is NOT entailed by (x ∨ y).
        proof.add(&[x.lit()], ProofOrigin::Learnt);
        assert!(matches!(
            check_proof(&m, &proof, None),
            CheckOutcome::Invalid { step: 0, .. }
        ));
    }

    #[test]
    fn incomplete_proof_rejected() {
        // (a) is RUP from the first two clauses, but the remaining unsat
        // core under a=1 is a 2-variable parity block that unit
        // propagation alone cannot refute — so a proof that stops after
        // deriving (a) must be rejected as incomplete.
        let mut m = Model::new();
        let a = m.new_var();
        let b = m.new_var();
        let c = m.new_var();
        let d = m.new_var();
        m.add_clause([a.lit(), b.lit()]);
        m.add_clause([a.lit(), !b.lit()]);
        m.add_clause([!a.lit(), c.lit(), d.lit()]);
        m.add_clause([!a.lit(), c.lit(), !d.lit()]);
        m.add_clause([!a.lit(), !c.lit(), d.lit()]);
        m.add_clause([!a.lit(), !c.lit(), !d.lit()]);
        let mut proof = ProofLog::new(1 << 20);
        proof.add(&[a.lit()], ProofOrigin::Learnt);
        // Stops before deriving the contradiction.
        let out = check_proof(&m, &proof, None);
        assert!(
            matches!(out, CheckOutcome::Invalid { step: 1, .. }),
            "{out:?}"
        );
    }

    #[test]
    fn delete_of_unknown_clause_rejected() {
        let m = tiny_unsat();
        let y = crate::model::Var(1);
        let mut proof = ProofLog::new(1 << 20);
        proof.delete(&[y.lit(), !y.lit()]);
        assert!(matches!(
            check_proof(&m, &proof, None),
            CheckOutcome::Invalid { step: 0, .. }
        ));
    }

    #[test]
    fn delete_then_use_fails() {
        // Deleting a clause must actually weaken the database: a proof
        // that deletes (x ∨ y) and then claims (y) via RUP must fail.
        let mut m = Model::new();
        let x = m.new_var();
        let y = m.new_var();
        m.add_clause([x.lit(), y.lit()]);
        m.add_clause([!x.lit(), y.lit()]);
        let mut proof = ProofLog::new(1 << 20);
        proof.add(&[x.lit(), y.lit()], ProofOrigin::Learnt); // re-derives input, fine
        proof.delete(&[x.lit(), y.lit()]); // deletes the copy
        proof.delete(&[y.lit(), x.lit()]); // deletes the input (reordered)
        proof.add(&[y.lit()], ProofOrigin::Learnt); // no longer RUP
        assert!(matches!(
            check_proof(&m, &proof, None),
            CheckOutcome::Invalid { step: 3, .. }
        ));
    }

    #[test]
    fn at_most_propagation_checked() {
        // x0 + x1 + x2 <= 1 with clauses forcing two of them true.
        let mut m = Model::new();
        let vs = m.new_vars(3);
        m.add_le(LinExpr::sum(vs.clone()), 1);
        m.add_clause([vs[0].lit()]);
        m.add_clause([vs[1].lit()]);
        // Model itself refutes at root: empty proof is valid.
        let proof = ProofLog::new(1 << 20);
        assert!(matches!(
            check_proof(&m, &proof, None),
            CheckOutcome::Valid { .. }
        ));
    }

    #[test]
    fn weighted_at_most_forces_literals() {
        // 3x + 2y + 2z <= 4 and x true leaves slack 1: y and z forced
        // false, so the clause (¬y) is RUP.
        let mut m = Model::new();
        let x = m.new_var();
        let y = m.new_var();
        let z = m.new_var();
        let e = LinExpr::new() + (3, x) + (2, y) + (2, z);
        m.add_le(e, 4);
        m.add_clause([x.lit()]);
        let mut proof = ProofLog::new(1 << 20);
        proof.add(&[!y.lit()], ProofOrigin::Learnt);
        // Proof is sound step-wise but derives no contradiction (the
        // model is satisfiable), so the final check must fail.
        assert!(matches!(
            check_proof(&m, &proof, None),
            CheckOutcome::Invalid { step: 1, .. }
        ));
    }

    #[test]
    fn entailed_units_filters_don_t_cares() {
        let mut m = Model::new();
        let x = m.new_var();
        let y = m.new_var();
        let z = m.new_var();
        m.add_clause([x.lit()]); // x entailed
        m.add_clause([!x.lit(), y.lit()]); // y entailed via x
        let cands = vec![x.lit(), y.lit(), z.lit(), !z.lit()];
        let out = entailed_units(&m, &cands, None);
        assert_eq!(out, vec![x.lit(), y.lit()]);
    }

    #[test]
    fn truncated_proof_rejected() {
        let m = tiny_unsat();
        let mut proof = ProofLog::new(1024);
        let lits: Vec<Lit> = (0..64)
            .map(|i| crate::model::Lit::positive(crate::model::Var(i)))
            .collect();
        for _ in 0..100 {
            proof.add(&lits, ProofOrigin::Learnt);
        }
        assert!(proof.truncated());
        assert!(matches!(
            check_proof(&m, &proof, None),
            CheckOutcome::Invalid { .. }
        ));
    }
}
