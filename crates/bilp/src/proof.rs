//! In-memory DRAT-style proof logging.
//!
//! When certification is requested ([`crate::SolverConfig::certify`]),
//! the CDCL engine records every clause it *adds* to its database beyond
//! the input constraints — learnt clauses (including learnt units),
//! clauses imported from the portfolio exchange, and presolve-derived
//! fixings — plus every learnt clause it *deletes* during database
//! reduction. The resulting step list is a clausal proof in the DRAT
//! tradition: replaying the additions by reverse unit propagation (RUP)
//! against the original model, in order and honouring the deletions,
//! re-derives the engine's unsatisfiability verdict without trusting a
//! single line of the search code (see [`crate::checker`]).
//!
//! The log is **bounded**: it accounts its own bytes against a cap and,
//! once the cap is exceeded, discards everything and stops recording
//! (`truncated`). A truncated proof is never checked — the verdict is
//! reported [`Certificate::Unchecked`] rather than risking an
//! out-of-memory abort on an adversarial instance.

use crate::model::Lit;

/// Where a proof step's clause came from. Every addition is tagged so a
/// failed check can be attributed to the subsystem that produced the
/// offending clause.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ProofOrigin {
    /// Learnt by the engine's own 1UIP conflict analysis.
    Learnt,
    /// Imported from the portfolio clause exchange (derived by a
    /// different worker).
    Imported,
    /// A variable fixing derived by the presolve pipeline and seeded
    /// into the certifying replay.
    Presolve,
    /// A rewritten clause produced by inprocessing between restarts
    /// (vivification shortening, root-literal stripping, or
    /// self-subsuming strengthening). Always a strict logical
    /// consequence of the database at emission time, so it checks as an
    /// ordinary RUP addition; the original clause is deleted in a
    /// separate step *after* the rewrite is logged.
    Inprocess,
}

/// Whether a step adds a clause to the database or deletes one.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum StepKind {
    /// The clause joins the database (must be RUP at this point).
    Add,
    /// The clause leaves the database (learnt-DB reduction).
    Delete,
}

/// One step of a clausal proof.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProofStep {
    /// Add or delete.
    pub kind: StepKind,
    /// Provenance tag (meaningful for additions; deletions reuse
    /// [`ProofOrigin::Learnt`]).
    pub origin: ProofOrigin,
    /// The clause's literals. Empty on an addition means the empty
    /// clause — an explicit contradiction.
    pub lits: Vec<Lit>,
}

/// Approximate heap footprint of one step holding `n` literals.
fn step_bytes(n: usize) -> usize {
    // ProofStep struct + Vec header + 4 bytes per literal, rounded up.
    48 + 4 * n
}

/// A bounded, append-only clausal proof.
#[derive(Debug, Clone, Default)]
pub struct ProofLog {
    steps: Vec<ProofStep>,
    bytes: usize,
    cap: usize,
    truncated: bool,
}

impl ProofLog {
    /// Default byte cap when the solver has no explicit memory limit.
    pub const DEFAULT_CAP: usize = 64 << 20;

    /// An empty proof holding at most `cap` bytes of steps.
    pub fn new(cap: usize) -> Self {
        ProofLog {
            steps: Vec::new(),
            bytes: 0,
            cap: cap.max(1024),
            truncated: false,
        }
    }

    fn push(&mut self, step: ProofStep) {
        if self.truncated {
            return;
        }
        let cost = step_bytes(step.lits.len());
        if self.bytes + cost > self.cap {
            // Over budget: a partial proof is worthless to the checker,
            // so free everything and record the truncation.
            self.steps = Vec::new();
            self.bytes = 0;
            self.truncated = true;
            return;
        }
        self.bytes += cost;
        self.steps.push(step);
    }

    /// Records the addition of a clause (empty = explicit contradiction).
    pub fn add(&mut self, lits: &[Lit], origin: ProofOrigin) {
        self.push(ProofStep {
            kind: StepKind::Add,
            origin,
            lits: lits.to_vec(),
        });
    }

    /// Records the deletion of a clause.
    pub fn delete(&mut self, lits: &[Lit]) {
        self.push(ProofStep {
            kind: StepKind::Delete,
            origin: ProofOrigin::Learnt,
            lits: lits.to_vec(),
        });
    }

    /// The recorded steps (empty if the log was truncated).
    pub fn steps(&self) -> &[ProofStep] {
        &self.steps
    }

    /// Approximate bytes currently held by the log.
    pub fn bytes(&self) -> usize {
        self.bytes
    }

    /// Whether the byte cap was hit: the steps were discarded and the
    /// proof cannot be checked.
    pub fn truncated(&self) -> bool {
        self.truncated
    }

    /// Number of recorded steps.
    pub fn len(&self) -> usize {
        self.steps.len()
    }

    /// Whether no steps were recorded.
    pub fn is_empty(&self) -> bool {
        self.steps.is_empty()
    }
}

/// The trust status of one `Infeasible` verdict.
///
/// Produced when [`crate::SolverConfig::certify`] is set: the solve is
/// replayed by a fresh proof-logging engine and the proof is re-derived
/// by the independent RUP checker ([`crate::checker`]), which shares no
/// code with the search engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Certificate {
    /// The independent checker re-derived the contradiction from the
    /// model and the logged proof: the verdict is machine-checked.
    Certified {
        /// Number of proof steps replayed.
        steps: usize,
        /// Approximate proof size in bytes.
        bytes: usize,
    },
    /// The verdict could not be checked within budget (replay or check
    /// ran out of time, or the proof was truncated by the memory cap).
    /// The verdict itself still stands on the search engine's word.
    Unchecked {
        /// Why the check did not complete.
        reason: String,
    },
    /// The check ran and **failed**: either the proof does not derive a
    /// contradiction or the replay found a satisfying assignment. The
    /// verdict must not be trusted.
    CheckFailed {
        /// What went wrong.
        detail: String,
    },
}

impl Certificate {
    /// Whether the verdict was machine-checked successfully.
    pub fn is_certified(&self) -> bool {
        matches!(self, Certificate::Certified { .. })
    }

    /// Whether the check ran and contradicted the verdict.
    pub fn is_check_failed(&self) -> bool {
        matches!(self, Certificate::CheckFailed { .. })
    }

    /// A short, stable label: `"certified"`, `"unchecked"` or
    /// `"check-failed"`.
    pub fn label(&self) -> &'static str {
        match self {
            Certificate::Certified { .. } => "certified",
            Certificate::Unchecked { .. } => "unchecked",
            Certificate::CheckFailed { .. } => "check-failed",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::{Lit, Var};

    #[test]
    fn log_records_adds_and_deletes() {
        let mut log = ProofLog::new(1 << 20);
        let l = Lit::positive(Var(0));
        log.add(&[l], ProofOrigin::Learnt);
        log.delete(&[l, !l]);
        assert_eq!(log.len(), 2);
        assert_eq!(log.steps()[0].kind, StepKind::Add);
        assert_eq!(log.steps()[1].kind, StepKind::Delete);
        assert!(!log.truncated());
        assert!(log.bytes() > 0);
    }

    #[test]
    fn cap_truncates_and_frees() {
        let mut log = ProofLog::new(1024);
        let lits: Vec<Lit> = (0..64).map(|i| Lit::positive(Var(i))).collect();
        for _ in 0..100 {
            log.add(&lits, ProofOrigin::Learnt);
        }
        assert!(log.truncated());
        assert!(log.is_empty());
        assert_eq!(log.bytes(), 0);
        // Further adds are no-ops.
        log.add(&lits, ProofOrigin::Learnt);
        assert!(log.is_empty());
    }

    #[test]
    fn certificate_labels() {
        assert_eq!(
            Certificate::Certified { steps: 1, bytes: 2 }.label(),
            "certified"
        );
        assert!(Certificate::Certified { steps: 0, bytes: 0 }.is_certified());
        let u = Certificate::Unchecked { reason: "x".into() };
        assert_eq!(u.label(), "unchecked");
        assert!(!u.is_certified());
        let f = Certificate::CheckFailed { detail: "y".into() };
        assert_eq!(f.label(), "check-failed");
        assert!(f.is_check_failed());
    }
}
