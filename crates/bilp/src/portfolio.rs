//! Parallel portfolio solving: N diversified CDCL engines racing on the
//! same model.
//!
//! The paper runs Gurobi with 8 threads; this module is the from-scratch
//! equivalent of Gurobi's *concurrent MIP* mode for our engine. Each
//! worker thread builds its own [`Engine`] over the same constraint
//! database but with a diversified configuration — decision-order seed,
//! randomised tie-breaking, initial polarity, restart schedule, VSIDS
//! on/off — and the workers race:
//!
//! * **Feasibility** (no objective): the first worker to decide SAT or
//!   UNSAT wins and cancels the others through a shared [`AtomicBool`].
//! * **Optimisation** (branch-and-bound): workers share the incumbent
//!   objective through an [`AtomicI64`]; every worker prunes against the
//!   globally best bound, so one worker's lucky incumbent immediately
//!   shrinks everyone else's search space. The first worker to prove
//!   unsatisfiability *under the globally best bound* proves optimality
//!   for the whole portfolio.
//!
//! Workers additionally share learnt clauses through a bounded
//! [`ClauseExchange`], drained at solve start and at restart boundaries.
//! Only *glue* clauses travel — LBD at most `share_lbd`, length at most
//! `share_len` (units always qualify) — so the pool stays small and every
//! import is likely to prune. Entries are tagged with the objective bound
//! under which they were derived: a clause learnt under `obj <= k` is
//! sound for any worker whose own bound is at least as tight (`<= k`),
//! because that worker's constraint set entails the publisher's. Untagged
//! clauses (learnt before any bound) are sound for everyone. The pool is
//! a fixed-capacity ring: old entries are evicted, publication uses
//! `try_lock` so the hot path never blocks on a contended mutex, and a
//! worker never re-imports its own clauses.
//!
//! # Determinism
//!
//! Feasibility verdicts, infeasibility proofs and *optimal objective
//! values* are identical to the single-threaded solver's — they are
//! proofs, not samples. Which satisfying assignment is returned (among
//! equally good ones) and which worker wins the race may vary from run to
//! run. `threads = 1` bypasses the portfolio entirely and is bit-for-bit
//! identical to the sequential solver.
//!
//! # Fault isolation
//!
//! Each worker runs under [`std::panic::catch_unwind`]: a panicking
//! worker is quarantined — its partial state is dropped, the panic is
//! counted in [`SolveStats::worker_panics`], and the race continues on
//! the survivors. Shared state is panic-tolerant by construction: every
//! mutex acquisition recovers from poisoning (the guarded data — a
//! clause pool and an incumbent slot — is always in a consistent state
//! between mutations, so a poison flag carries no information here), and
//! an incumbent is only accepted after re-validation against the
//! original [`Model`], so a corrupted worker cannot smuggle a bogus
//! solution past the race. If *every* worker dies, the portfolio
//! degrades to a fresh single-threaded solve on the calling thread with
//! whatever budget remains rather than returning garbage.

use crate::engine::{Budget, Engine, EngineFeatures, EngineStats, SatResult};
use crate::model::{Cmp, Constraint, LinExpr, Lit, Model, Var};
use crate::normalize::normalize;
use crate::solve::{Assignment, HeuristicProbe, IncumbentSource, Outcome, SolveStats, Solver};
use crate::SolverConfig;
use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, MutexGuard, TryLockError};
use std::time::{Duration, Instant};

/// Chaos-testing hook: when set to a worker index, that worker panics on
/// entry; when set to [`CHAOS_PANIC_ALL`], every worker panics (forcing
/// the all-dead degradation path). `usize::MAX` (the default) disables
/// injection. Test-only — never set in production code.
#[doc(hidden)]
pub static CHAOS_PANIC_WORKER: AtomicUsize = AtomicUsize::new(usize::MAX);

/// Sentinel for [`CHAOS_PANIC_WORKER`]: panic *every* worker.
#[doc(hidden)]
pub const CHAOS_PANIC_ALL: usize = usize::MAX - 1;

/// Locks a mutex, recovering the guard if a panicking worker poisoned
/// it. Sound for the portfolio's shared state because both guarded
/// structures are consistent between mutations (no multi-step critical
/// sections that a mid-flight panic could tear).
fn lock_recover<T>(mutex: &Mutex<T>) -> MutexGuard<'_, T> {
    mutex.lock().unwrap_or_else(|e| e.into_inner())
}

/// One clause in the exchange pool.
#[derive(Debug, Clone)]
struct SharedClause {
    lits: Vec<Lit>,
    lbd: u32,
    bound_tag: i64,
    worker: usize,
}

/// Ring storage behind the exchange mutex: `base` is the global index of
/// `entries[0]`, so cursors are monotone counters that survive eviction.
#[derive(Debug, Default)]
struct ExchangePool {
    base: usize,
    entries: VecDeque<SharedClause>,
}

/// A bounded, lock-light pool of learnt clauses shared between portfolio
/// workers and drained at solve start and restart boundaries.
///
/// Each entry carries the clause, its LBD, the publishing worker's id
/// (workers skip their own clauses on import) and a `bound_tag`: the
/// clause was learnt while the publisher's objective-bound constraint was
/// `obj <= bound_tag` (`i64::MAX` when no bound had been added). An
/// importer whose current bound `b` satisfies `b <= bound_tag` may
/// soundly attach the clause, because its constraint set entails the
/// publisher's.
///
/// The pool holds at most `capacity` clauses; publishing past capacity
/// evicts the oldest entry, and an importer whose cursor has fallen
/// behind the ring's base simply misses the evicted clauses — sharing is
/// best-effort, never load-bearing. Publication uses `try_lock` and drops
/// the clause on contention for the same reason.
#[derive(Debug)]
pub struct ClauseExchange {
    pool: Mutex<ExchangePool>,
    capacity: usize,
}

impl Default for ClauseExchange {
    fn default() -> Self {
        Self::new()
    }
}

impl ClauseExchange {
    /// Default pool capacity: ample for glue-only sharing, small enough
    /// that a stalled importer never faces an unbounded backlog.
    pub const DEFAULT_CAPACITY: usize = 4096;

    /// An empty exchange with the default capacity.
    pub fn new() -> Self {
        Self::with_capacity(Self::DEFAULT_CAPACITY)
    }

    /// An empty exchange holding at most `capacity` clauses at once.
    pub fn with_capacity(capacity: usize) -> Self {
        ClauseExchange {
            pool: Mutex::new(ExchangePool::default()),
            capacity: capacity.max(1),
        }
    }

    /// Total number of clauses ever published (monotone; evicted entries
    /// still count). New engines start their import cursor here.
    pub fn len(&self) -> usize {
        let pool = lock_recover(&self.pool);
        pool.base + pool.entries.len()
    }

    /// Whether no clauses have ever been published.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Publishes a clause learnt by `worker`, valid under objective bound
    /// `bound_tag`. Best-effort: returns `false` (dropping the clause)
    /// when the pool mutex is contended.
    pub fn publish(&self, worker: usize, lits: &[Lit], lbd: u32, bound_tag: i64) -> bool {
        let mut pool = match self.pool.try_lock() {
            Ok(pool) => pool,
            Err(TryLockError::Poisoned(e)) => e.into_inner(),
            Err(TryLockError::WouldBlock) => return false,
        };
        if pool.entries.len() == self.capacity {
            pool.entries.pop_front();
            pool.base += 1;
        }
        pool.entries.push_back(SharedClause {
            lits: lits.to_vec(),
            lbd,
            bound_tag,
            worker,
        });
        true
    }

    /// Visits every clause published since `*cursor` that did not come
    /// from `my_id` and whose bound tag is compatible with `my_bound`,
    /// advancing the cursor past everything seen (incompatible clauses
    /// can never become compatible, because bounds only tighten; clauses
    /// evicted before the cursor caught up are silently missed).
    pub fn import_since(
        &self,
        cursor: &mut usize,
        my_bound: i64,
        my_id: usize,
        mut f: impl FnMut(&[Lit], u32),
    ) {
        let pool = lock_recover(&self.pool);
        let start = (*cursor).max(pool.base) - pool.base;
        for c in pool.entries.iter().skip(start) {
            if c.worker != my_id && my_bound <= c.bound_tag {
                f(&c.lits, c.lbd);
            }
        }
        *cursor = pool.base + pool.entries.len();
    }
}

/// What one worker concluded (beyond incumbents, which are shared as
/// they are found).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WorkerVerdict {
    /// Found a satisfying assignment in a pure feasibility race.
    FoundSat,
    /// Proved the base model infeasible.
    Infeasible,
    /// Proved there is no solution with objective `<= bound`; combined
    /// with the shared incumbent this is an optimality proof.
    ExhaustedBelow(i64),
    /// Stopped without a proof (budget, cancellation).
    Inconclusive,
}

/// State shared by all portfolio workers.
struct Shared {
    /// Cooperative cancellation: set once any worker reaches a verdict
    /// that decides the whole solve. Behind an `Arc` so each engine can
    /// hold a clone as its interrupt hook.
    stop: Arc<AtomicBool>,
    /// Best incumbent objective value (`i64::MAX` = none yet). Behind an
    /// `Arc` so each engine can watch it from inside its search loop
    /// (see [`Engine::set_bound_watch`]) and react to a foreign
    /// incumbent mid-solve instead of at the next solve call.
    best_objective: Arc<AtomicI64>,
    /// Best incumbent assignment and where it came from, guarded
    /// separately from the atomic so readers of `best_objective` never
    /// block.
    incumbent: Mutex<Option<(Assignment, i64, IncumbentSource)>>,
    /// Learnt-clause pool.
    exchange: Arc<ClauseExchange>,
}

impl Shared {
    /// Records an incumbent if it improves on the global best. Returns
    /// whether it was accepted.
    fn offer_incumbent(
        &self,
        solution: Assignment,
        objective: i64,
        source: IncumbentSource,
    ) -> bool {
        let mut slot = lock_recover(&self.incumbent);
        let improves = slot
            .as_ref()
            .map(|&(_, b, _)| objective < b)
            .unwrap_or(true);
        if improves {
            *slot = Some((solution, objective, source));
            self.best_objective.fetch_min(objective, Ordering::SeqCst);
        }
        improves
    }
}

/// The diversified configuration for worker `w` of `n`.
///
/// Worker 0 is pinned to the solver's baseline configuration *verbatim*
/// — not even the seed is overridden — so its search trace up to the
/// first decisive verdict is the sequential solver's and `threads > 1`
/// can never lose a cell that `threads = 1` decides (it also skips
/// clause imports and keeps the full memory cap; see [`run_worker`]).
/// The rest vary seed, tie-breaking, polarity and restart cadence, with
/// one static-order (VSIDS-off) worker in portfolios of four or more.
fn worker_features(base: EngineFeatures, seed: u64, w: usize, n: usize) -> EngineFeatures {
    if w == 0 {
        return base;
    }
    let restart_bases = [256u64, 64, 512, 128, 1024, 32];
    let mut f = EngineFeatures {
        seed: seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(w as u64 + 1)),
        random_tiebreak: true,
        default_phase: w % 2 == 1,
        restart_base: restart_bases[w % restart_bases.len()],
        ..base
    };
    if w == 3 && n >= 4 {
        // One worker searches in static order: occasionally dramatically
        // better on structured instances, and maximally decorrelated
        // from the VSIDS workers.
        f.vsids = false;
        f.random_tiebreak = false;
    }
    f
}

/// Builds a fresh engine over `model` with the given features. Returns
/// `None` if root-level propagation already refutes the model.
fn build_engine(
    model: &Model,
    features: EngineFeatures,
    mem_limit: Option<usize>,
) -> Option<Engine> {
    let mut engine = Engine::new(model.num_vars());
    engine.set_features(features);
    if let Some(bytes) = mem_limit {
        engine.set_mem_limit(bytes);
    }
    for &(var, priority, phase) in model.branch_hints() {
        engine.set_branch_hint(var, priority, phase);
    }
    for c in model.constraints() {
        for nc in normalize(c) {
            if !engine.add_norm(nc) {
                return None;
            }
        }
    }
    Some(engine)
}

/// One worker's branch-and-bound loop. Returns its verdict, stats and
/// the number of times it consumed a globally improved bound mid-solve.
#[allow(clippy::too_many_arguments)]
fn run_worker(
    model: &Model,
    objective: Option<&LinExpr>,
    features: EngineFeatures,
    budget: Budget,
    shared: &Shared,
    incumbents_found: &AtomicI64,
    worker_id: usize,
    mem_limit: Option<usize>,
) -> (WorkerVerdict, EngineStats, u64) {
    let chaos = CHAOS_PANIC_WORKER.load(Ordering::Relaxed);
    if chaos == worker_id || chaos == CHAOS_PANIC_ALL {
        panic!("chaos injection: worker {worker_id} deliberately panicked");
    }
    let Some(mut engine) = build_engine(model, features, mem_limit) else {
        return (WorkerVerdict::Infeasible, EngineStats::default(), 0);
    };
    engine.set_interrupt(Arc::clone(&shared.stop));
    engine.set_exchange(Arc::clone(&shared.exchange), worker_id, model.num_vars());
    if worker_id == 0 {
        // The pinned worker exports clauses but never imports: a foreign
        // clause would perturb its search away from the sequential trace
        // it is pinned to reproduce.
        engine.set_exchange_import(false);
    }
    if objective.is_some() {
        // React to foreign incumbents *inside* the search: when the
        // global best drops below this worker's own bound, the engine
        // yields Unknown at its next poll and the loop below re-enters
        // with the tighter permanent constraint.
        engine.set_bound_watch(Arc::clone(&shared.best_objective));
    }

    // The bound this worker has constrained the objective to (i64::MAX =
    // no bound constraint added yet). Only ever tightens.
    let mut my_bound = i64::MAX;
    // Times this worker was woken by the bound watch and re-entered with
    // a strictly tighter bound.
    let mut tightenings = 0u64;

    loop {
        if shared.stop.load(Ordering::Relaxed) {
            return (WorkerVerdict::Inconclusive, engine.stats(), tightenings);
        }
        // Prune against the globally best incumbent before searching.
        if let Some(obj) = objective {
            let global = shared.best_objective.load(Ordering::SeqCst);
            if global != i64::MAX && my_bound > global.saturating_sub(1) {
                let target = global - 1;
                let bound = Constraint {
                    expr: obj.clone(),
                    cmp: Cmp::Le,
                    rhs: target,
                };
                my_bound = target;
                engine.set_bound_tag(my_bound);
                let mut closed = false;
                for nc in normalize(&bound) {
                    if !engine.add_norm(nc) {
                        closed = true;
                        break;
                    }
                }
                if closed {
                    return (
                        WorkerVerdict::ExhaustedBelow(my_bound),
                        engine.stats(),
                        tightenings,
                    );
                }
            }
        }
        match engine.solve(budget) {
            SatResult::Unsat => {
                let verdict = if my_bound == i64::MAX {
                    WorkerVerdict::Infeasible
                } else {
                    WorkerVerdict::ExhaustedBelow(my_bound)
                };
                return (verdict, engine.stats(), tightenings);
            }
            SatResult::Unknown => {
                // Distinguish a bound-watch wake-up from budget
                // exhaustion: woken workers loop back (the top of the
                // loop posts the strictly tighter bound, so this
                // terminates — each wake requires a strictly better
                // global incumbent), exhausted ones retire.
                let woken = objective.is_some() && {
                    let global = shared.best_objective.load(Ordering::SeqCst);
                    global != i64::MAX && my_bound > global.saturating_sub(1)
                };
                let live = !shared.stop.load(Ordering::Relaxed)
                    && budget.deadline.is_none_or(|d| Instant::now() < d);
                if woken && live {
                    tightenings += 1;
                    continue;
                }
                return (WorkerVerdict::Inconclusive, engine.stats(), tightenings);
            }
            SatResult::Sat => {
                let solution = Assignment::from_values(
                    (0..model.num_vars())
                        .map(|i| engine.model_value(Var(i as u32)))
                        .collect(),
                );
                // Hard validation gate: a worker whose engine produced a
                // witness violating the original model is faulty — treat
                // it as dead rather than poisoning the shared incumbent.
                if model.check(|v| solution.value(v)).is_err() {
                    return (WorkerVerdict::Inconclusive, engine.stats(), tightenings);
                }
                let Some(obj) = objective else {
                    shared.offer_incumbent(solution, 0, IncumbentSource::Solver);
                    return (WorkerVerdict::FoundSat, engine.stats(), tightenings);
                };
                let val = obj.evaluate(|v| solution.value(v));
                incumbents_found.fetch_add(1, Ordering::Relaxed);
                shared.offer_incumbent(solution, val, IncumbentSource::Solver);
                // Loop: the next iteration tightens to the global best
                // (which now includes this incumbent) and keeps searching.
            }
        }
    }
}

/// One heuristic-probe worker: repeatedly runs the probe with
/// diversified seeds, re-validates every candidate against the model,
/// and publishes validated solutions as shared incumbents. In a pure
/// feasibility race a single validated candidate decides the solve; with
/// an objective the worker keeps racing for improvements until the
/// budget ends, the race is decided, or the probe source is exhausted
/// (returns `None`).
///
/// Probes never produce verdicts: an invalid candidate is discarded and
/// the worker simply tries again, so a buggy or adversarial probe can
/// waste its own thread but cannot flip a verdict or corrupt the race.
#[allow(clippy::too_many_arguments)]
fn run_probe_worker(
    model: &Model,
    objective: Option<&LinExpr>,
    probe: &dyn HeuristicProbe,
    budget: Budget,
    shared: &Shared,
    probe_incumbents: &AtomicI64,
    worker_id: usize,
    seed: u64,
) {
    let mut attempt = 0u64;
    loop {
        if shared.stop.load(Ordering::Relaxed) {
            return;
        }
        if budget.deadline.is_some_and(|d| Instant::now() >= d) {
            return;
        }
        attempt += 1;
        let diversified =
            seed ^ 0x9e37_79b9_7f4a_7c15u64.wrapping_mul(((worker_id as u64) << 24) | attempt);
        let Some(values) = probe.probe(diversified, &shared.stop) else {
            return; // source exhausted — retire this worker
        };
        if values.len() != model.num_vars() {
            continue;
        }
        let solution = Assignment::from_values(values);
        // Validation gate: nothing a probe says is trusted unchecked.
        if model.check(|v| solution.value(v)).is_err() {
            continue;
        }
        match objective {
            None => {
                // A validated assignment decides the feasibility race.
                shared.offer_incumbent(solution, 0, IncumbentSource::Heuristic);
                probe_incumbents.fetch_add(1, Ordering::Relaxed);
                shared.stop.store(true, Ordering::SeqCst);
                return;
            }
            Some(obj) => {
                let val = obj.evaluate(|v| solution.value(v));
                if shared.offer_incumbent(solution, val, IncumbentSource::Heuristic) {
                    probe_incumbents.fetch_add(1, Ordering::Relaxed);
                }
            }
        }
    }
}

/// Solves `model` with a portfolio of `threads` diversified workers.
///
/// Called by [`crate::Solver::solve`] when `config.threads > 1`; not
/// intended to be used directly.
pub(crate) fn solve_portfolio(
    model: &Model,
    config: &SolverConfig,
    threads: usize,
    probe: Option<&dyn HeuristicProbe>,
    stats: &mut SolveStats,
    deadline: Option<Instant>,
    interrupt: Option<&Arc<AtomicBool>>,
) -> Outcome {
    let start = Instant::now();
    let budget = Budget {
        deadline,
        conflict_limit: config.conflict_limit,
    };
    let objective = model.objective().map(LinExpr::normalized);

    let shared = Shared {
        stop: Arc::new(AtomicBool::new(false)),
        best_objective: Arc::new(AtomicI64::new(i64::MAX)),
        incumbent: Mutex::new(None),
        exchange: Arc::new(ClauseExchange::new()),
    };
    let incumbents_found = AtomicI64::new(0);
    let probe_incumbents = AtomicI64::new(0);
    let probe_panics = AtomicUsize::new(0);
    // Heuristic probes race on their own threads, first-class members of
    // the portfolio: `probe_workers` scales the count, and supplying a
    // probe always engages at least one.
    let probe_threads = if probe.is_some() {
        config.probe_workers.max(1)
    } else {
        0
    };
    // Split the memory budget evenly; keep a sane per-worker floor so a
    // huge portfolio under a tiny cap does not strangle every engine.
    // Worker 0 is exempt: it is pinned to reproduce the sequential
    // solver, which runs under the full cap.
    let worker_mem = config.mem_limit.map(|m| (m / threads.max(1)).max(1 << 16));

    // `None` = the worker panicked and was quarantined.
    let results: Vec<Option<(WorkerVerdict, EngineStats, u64)>> = std::thread::scope(|scope| {
        // Relay an external cancellation flag (e.g. a serving layer's
        // shutdown signal) into the portfolio's own stop flag. The relay
        // must not *be* the stop flag: the race sets `stop` on every
        // decisive verdict, and that must never leak back into the
        // caller's flag.
        if let Some(external) = interrupt {
            let stop = Arc::clone(&shared.stop);
            let external = Arc::clone(external);
            scope.spawn(move || {
                while !stop.load(Ordering::Relaxed) {
                    if external.load(Ordering::Relaxed) {
                        stop.store(true, Ordering::SeqCst);
                        break;
                    }
                    std::thread::sleep(Duration::from_millis(2));
                }
            });
        }
        for p in 0..probe_threads {
            let probe = probe.expect("probe_threads > 0 implies a probe");
            let shared = &shared;
            let objective = objective.as_ref();
            let probe_incumbents = &probe_incumbents;
            let probe_panics = &probe_panics;
            let seed = config.seed;
            scope.spawn(move || {
                // Quarantined like CDCL workers: a panicking probe is
                // dropped and the exact race continues without it.
                if catch_unwind(AssertUnwindSafe(|| {
                    run_probe_worker(
                        model,
                        objective,
                        probe,
                        budget,
                        shared,
                        probe_incumbents,
                        p,
                        seed,
                    )
                }))
                .is_err()
                {
                    probe_panics.fetch_add(1, Ordering::Relaxed);
                }
            });
        }
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let features = worker_features(config.features, config.seed, w, threads);
                let shared = &shared;
                let objective = objective.as_ref();
                let incumbents_found = &incumbents_found;
                let mem = if w == 0 { config.mem_limit } else { worker_mem };
                scope.spawn(move || {
                    // Quarantine panics: the worker's state is dropped,
                    // the race continues on the survivors.
                    let out = catch_unwind(AssertUnwindSafe(|| {
                        run_worker(
                            model,
                            objective,
                            features,
                            budget,
                            shared,
                            incumbents_found,
                            w,
                            mem,
                        )
                    }))
                    .ok();
                    // A decisive verdict ends the race for everyone.
                    if matches!(&out, Some((v, _, _)) if *v != WorkerVerdict::Inconclusive) {
                        shared.stop.store(true, Ordering::SeqCst);
                    }
                    out
                })
            })
            .collect();
        let results: Vec<_> = handles
            .into_iter()
            .map(|h| h.join().unwrap_or(None))
            .collect();
        // Every worker is done: release the relay thread (if any) so the
        // scope can join it even when no verdict set the flag.
        shared.stop.store(true, Ordering::SeqCst);
        results
    });

    // Aggregate statistics across workers.
    let panics = results.iter().filter(|r| r.is_none()).count() as u32
        + probe_panics.load(Ordering::Relaxed) as u32;
    let mut engine = EngineStats::default();
    let mut winner = None;
    let mut bound_tightenings = 0u64;
    for (w, (verdict, s, tightenings)) in results
        .iter()
        .enumerate()
        .filter_map(|(w, r)| r.as_ref().map(|triple| (w, triple)))
    {
        bound_tightenings += tightenings;
        engine.conflicts += s.conflicts;
        engine.decisions += s.decisions;
        engine.propagations += s.propagations;
        engine.restarts += s.restarts;
        engine.deleted_clauses += s.deleted_clauses;
        engine.learnt_clauses += s.learnt_clauses;
        engine.lbd_total += s.lbd_total;
        engine.deleted_mid += s.deleted_mid;
        engine.deleted_local += s.deleted_local;
        engine.kept_core += s.kept_core;
        engine.kept_mid += s.kept_mid;
        engine.kept_local += s.kept_local;
        engine.imported_clauses += s.imported_clauses;
        engine.exported_clauses += s.exported_clauses;
        engine.inprocessings += s.inprocessings;
        engine.vivified_lits += s.vivified_lits;
        engine.subsumed_clauses += s.subsumed_clauses;
        engine.strengthened_lits += s.strengthened_lits;
        engine.gc_runs += s.gc_runs;
        if winner.is_none() && *verdict != WorkerVerdict::Inconclusive {
            winner = Some(w as u32);
        }
    }
    stats.engine = engine;
    stats.incumbents = incumbents_found.load(Ordering::Relaxed).max(0) as u64;
    stats.workers = threads as u32;
    stats.winner = winner;
    stats.worker_panics = panics;
    stats.probe_workers = probe_threads as u32;
    stats.probe_incumbents = probe_incumbents.load(Ordering::Relaxed).max(0) as u64;
    stats.bound_tightenings = bound_tightenings;
    stats.elapsed = start.elapsed();

    // Graceful degradation: every worker died before reaching any
    // conclusion. Rather than reporting Unknown on a healthy model, run
    // a fresh single-threaded solve on the calling thread with whatever
    // wall-clock budget remains.
    if results.iter().all(Option::is_none) {
        let fallback = SolverConfig {
            threads: 1,
            presolve: false,
            // The outer caller certifies Infeasible answers itself.
            certify: false,
            time_limit: deadline.map(|d| d.saturating_duration_since(Instant::now())),
            ..*config
        };
        let mut solver = Solver::with_config(fallback);
        if let Some(flag) = interrupt {
            solver.set_interrupt(Arc::clone(flag));
        }
        let out = match probe {
            Some(p) => solver.solve_with_probe(model, p),
            None => solver.solve(model),
        };
        let fb = solver.stats();
        stats.engine = fb.engine;
        stats.incumbents = fb.incumbents;
        stats.probe_workers += fb.probe_workers;
        stats.probe_incumbents += fb.probe_incumbents;
        stats.incumbent_source = fb.incumbent_source;
        stats.winner = None;
        stats.elapsed = start.elapsed();
        return out;
    }

    // Re-validate the final incumbent against the original model: the
    // per-worker gate already filtered engine-level corruption, but the
    // slot itself could have been written by a worker that later
    // panicked, so trust nothing that does not check out.
    let incumbent = lock_recover(&shared.incumbent)
        .take()
        .filter(|(sol, _, _)| model.check(|v| sol.value(v)) == Ok(()));
    if let Some((_, _, source)) = &incumbent {
        stats.incumbent_source = Some(*source);
    }
    let verdicts = || results.iter().filter_map(|r| r.as_ref().map(|(v, _, _)| v));
    let infeasible = verdicts().any(|v| *v == WorkerVerdict::Infeasible);
    let exhausted = verdicts()
        .filter_map(|v| match v {
            WorkerVerdict::ExhaustedBelow(b) => Some(*b),
            _ => None,
        })
        .max();

    match (incumbent, objective) {
        // Feasibility race: a worker (or a validated probe) decided SAT.
        (Some((solution, _, _)), None) => Outcome::Optimal {
            solution,
            objective: 0,
        },
        (Some((solution, objective, _)), Some(_)) => {
            // Optimal iff some worker exhausted the space below the best
            // incumbent. `exhausted >= objective - 1` can only hold with
            // equality (a strictly better incumbent would contradict the
            // exhaustion proof), but compare defensively.
            let proven = exhausted.map(|b| b >= objective - 1).unwrap_or(false);
            if proven {
                Outcome::Optimal {
                    solution,
                    objective,
                }
            } else {
                Outcome::Feasible {
                    solution,
                    objective,
                }
            }
        }
        (None, _) if infeasible => Outcome::Infeasible,
        (None, _) => Outcome::Unknown,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Worker 0 is pinned to the undiversified sequential configuration:
    /// whatever the `threads = 1` engine decides, one portfolio member
    /// is always running that exact search, so raising the thread count
    /// can never lose a verdict the sequential solver finds in budget.
    #[test]
    fn worker_zero_runs_the_sequential_configuration() {
        let base = EngineFeatures::default();
        for n in [2usize, 4, 8] {
            assert_eq!(worker_features(base, 42, 0, n), base, "n = {n}");
        }
        // Diversified workers genuinely differ from the base.
        assert_ne!(worker_features(base, 42, 1, 4), base);
    }
}
