//! Parallel portfolio solving: N diversified CDCL engines racing on the
//! same model.
//!
//! The paper runs Gurobi with 8 threads; this module is the from-scratch
//! equivalent of Gurobi's *concurrent MIP* mode for our engine. Each
//! worker thread builds its own [`Engine`] over the same constraint
//! database but with a diversified configuration — decision-order seed,
//! randomised tie-breaking, initial polarity, restart schedule, VSIDS
//! on/off — and the workers race:
//!
//! * **Feasibility** (no objective): the first worker to decide SAT or
//!   UNSAT wins and cancels the others through a shared [`AtomicBool`].
//! * **Optimisation** (branch-and-bound): workers share the incumbent
//!   objective through an [`AtomicI64`]; every worker prunes against the
//!   globally best bound, so one worker's lucky incumbent immediately
//!   shrinks everyone else's search space. The first worker to prove
//!   unsatisfiability *under the globally best bound* proves optimality
//!   for the whole portfolio.
//!
//! Workers additionally share learnt **unit clauses** through a
//! [`UnitExchange`], drained at restart boundaries. Units are tagged with
//! the objective bound under which they were derived: a unit learnt under
//! `obj <= k` is sound for any worker whose own bound is at least as
//! tight (`<= k`), because that worker's constraint set entails the
//! publisher's. Untagged units (learnt before any bound) are sound for
//! everyone.
//!
//! # Determinism
//!
//! Feasibility verdicts, infeasibility proofs and *optimal objective
//! values* are identical to the single-threaded solver's — they are
//! proofs, not samples. Which satisfying assignment is returned (among
//! equally good ones) and which worker wins the race may vary from run to
//! run. `threads = 1` bypasses the portfolio entirely and is bit-for-bit
//! identical to the sequential solver.

use crate::engine::{Budget, Engine, EngineFeatures, EngineStats, SatResult};
use crate::model::{Cmp, Constraint, LinExpr, Lit, Model, Var};
use crate::normalize::normalize;
use crate::solve::{Assignment, Outcome, SolveStats};
use crate::SolverConfig;
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::Instant;

/// A lock-protected pool of learnt unit literals, shared between
/// portfolio workers and drained at restart boundaries.
///
/// Entries are `(literal, bound_tag)`: the literal was derived while the
/// publisher's objective-bound constraint was `obj <= bound_tag`
/// (`i64::MAX` when no bound had been added). An importer with current
/// bound `b` may soundly assume the literal iff `b <= bound_tag`.
#[derive(Debug, Default)]
pub struct UnitExchange {
    units: Mutex<Vec<(Lit, i64)>>,
}

impl UnitExchange {
    /// An empty exchange.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of units published so far.
    pub fn len(&self) -> usize {
        self.units.lock().expect("exchange poisoned").len()
    }

    /// Whether no units have been published.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Publishes a learnt unit valid under objective bound `bound_tag`.
    pub fn publish(&self, lit: Lit, bound_tag: i64) {
        self.units
            .lock()
            .expect("exchange poisoned")
            .push((lit, bound_tag));
    }

    /// Visits every unit published since `*cursor` whose bound tag is
    /// compatible with `my_bound`, advancing the cursor past everything
    /// seen (compatible or not — incompatible units can never become
    /// compatible, because bounds only tighten).
    pub fn import_since(&self, cursor: &mut usize, my_bound: i64, mut f: impl FnMut(Lit)) {
        let units = self.units.lock().expect("exchange poisoned");
        for &(lit, tag) in units.iter().skip(*cursor) {
            if my_bound <= tag {
                f(lit);
            }
        }
        *cursor = units.len();
    }
}

/// What one worker concluded (beyond incumbents, which are shared as
/// they are found).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum WorkerVerdict {
    /// Found a satisfying assignment in a pure feasibility race.
    FoundSat,
    /// Proved the base model infeasible.
    Infeasible,
    /// Proved there is no solution with objective `<= bound`; combined
    /// with the shared incumbent this is an optimality proof.
    ExhaustedBelow(i64),
    /// Stopped without a proof (budget, cancellation).
    Inconclusive,
}

/// State shared by all portfolio workers.
struct Shared {
    /// Cooperative cancellation: set once any worker reaches a verdict
    /// that decides the whole solve. Behind an `Arc` so each engine can
    /// hold a clone as its interrupt hook.
    stop: Arc<AtomicBool>,
    /// Best incumbent objective value (`i64::MAX` = none yet).
    best_objective: AtomicI64,
    /// Best incumbent assignment, guarded separately from the atomic so
    /// readers of `best_objective` never block.
    incumbent: Mutex<Option<(Assignment, i64)>>,
    /// Learnt-unit pool.
    exchange: Arc<UnitExchange>,
}

impl Shared {
    /// Records an incumbent if it improves on the global best.
    fn offer_incumbent(&self, solution: Assignment, objective: i64) {
        let mut slot = self.incumbent.lock().expect("incumbent poisoned");
        let improves = slot.as_ref().map(|&(_, b)| objective < b).unwrap_or(true);
        if improves {
            *slot = Some((solution, objective));
            self.best_objective.fetch_min(objective, Ordering::SeqCst);
        }
    }
}

/// The diversified configuration for worker `w` of `n`.
///
/// Worker 0 always runs the solver's baseline configuration, so a
/// portfolio is never worse-diversified than the sequential solver; the
/// rest vary seed, tie-breaking, polarity and restart cadence, with one
/// static-order (VSIDS-off) worker in portfolios of four or more.
fn worker_features(base: EngineFeatures, seed: u64, w: usize, n: usize) -> EngineFeatures {
    if w == 0 {
        return EngineFeatures { seed, ..base };
    }
    let restart_bases = [256u64, 64, 512, 128, 1024, 32];
    let mut f = EngineFeatures {
        seed: seed ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(w as u64 + 1)),
        random_tiebreak: true,
        default_phase: w % 2 == 1,
        restart_base: restart_bases[w % restart_bases.len()],
        ..base
    };
    if w == 3 && n >= 4 {
        // One worker searches in static order: occasionally dramatically
        // better on structured instances, and maximally decorrelated
        // from the VSIDS workers.
        f.vsids = false;
        f.random_tiebreak = false;
    }
    f
}

/// Builds a fresh engine over `model` with the given features. Returns
/// `None` if root-level propagation already refutes the model.
fn build_engine(model: &Model, features: EngineFeatures) -> Option<Engine> {
    let mut engine = Engine::new(model.num_vars());
    engine.set_features(features);
    for &(var, priority, phase) in model.branch_hints() {
        engine.set_branch_hint(var, priority, phase);
    }
    for c in model.constraints() {
        for nc in normalize(c) {
            if !engine.add_norm(nc) {
                return None;
            }
        }
    }
    Some(engine)
}

/// One worker's branch-and-bound loop. Returns its verdict and stats.
#[allow(clippy::too_many_arguments)]
fn run_worker(
    model: &Model,
    objective: Option<&LinExpr>,
    features: EngineFeatures,
    budget: Budget,
    shared: &Shared,
    incumbents_found: &AtomicI64,
) -> (WorkerVerdict, EngineStats) {
    let Some(mut engine) = build_engine(model, features) else {
        return (WorkerVerdict::Infeasible, EngineStats::default());
    };
    engine.set_interrupt(Arc::clone(&shared.stop));
    engine.set_exchange(Arc::clone(&shared.exchange));

    // The bound this worker has constrained the objective to (i64::MAX =
    // no bound constraint added yet). Only ever tightens.
    let mut my_bound = i64::MAX;

    loop {
        if shared.stop.load(Ordering::Relaxed) {
            return (WorkerVerdict::Inconclusive, engine.stats());
        }
        // Prune against the globally best incumbent before searching.
        if let Some(obj) = objective {
            let global = shared.best_objective.load(Ordering::SeqCst);
            if global != i64::MAX && my_bound > global.saturating_sub(1) {
                let target = global - 1;
                let bound = Constraint {
                    expr: obj.clone(),
                    cmp: Cmp::Le,
                    rhs: target,
                };
                my_bound = target;
                engine.set_bound_tag(my_bound);
                let mut closed = false;
                for nc in normalize(&bound) {
                    if !engine.add_norm(nc) {
                        closed = true;
                        break;
                    }
                }
                if closed {
                    return (WorkerVerdict::ExhaustedBelow(my_bound), engine.stats());
                }
            }
        }
        match engine.solve(budget) {
            SatResult::Unsat => {
                let verdict = if my_bound == i64::MAX {
                    WorkerVerdict::Infeasible
                } else {
                    WorkerVerdict::ExhaustedBelow(my_bound)
                };
                return (verdict, engine.stats());
            }
            SatResult::Unknown => {
                return (WorkerVerdict::Inconclusive, engine.stats());
            }
            SatResult::Sat => {
                let solution = Assignment::from_values(
                    (0..model.num_vars())
                        .map(|i| engine.model_value(Var(i as u32)))
                        .collect(),
                );
                debug_assert_eq!(model.check(|v| solution.value(v)), Ok(()));
                let Some(obj) = objective else {
                    shared.offer_incumbent(solution, 0);
                    return (WorkerVerdict::FoundSat, engine.stats());
                };
                let val = obj.evaluate(|v| solution.value(v));
                incumbents_found.fetch_add(1, Ordering::Relaxed);
                shared.offer_incumbent(solution, val);
                // Loop: the next iteration tightens to the global best
                // (which now includes this incumbent) and keeps searching.
            }
        }
    }
}

/// Solves `model` with a portfolio of `threads` diversified workers.
///
/// Called by [`crate::Solver::solve`] when `config.threads > 1`; not
/// intended to be used directly.
pub(crate) fn solve_portfolio(
    model: &Model,
    config: &SolverConfig,
    threads: usize,
    stats: &mut SolveStats,
    deadline: Option<Instant>,
) -> Outcome {
    let start = Instant::now();
    let budget = Budget {
        deadline,
        conflict_limit: config.conflict_limit,
    };
    let objective = model.objective().map(LinExpr::normalized);

    let shared = Shared {
        stop: Arc::new(AtomicBool::new(false)),
        best_objective: AtomicI64::new(i64::MAX),
        incumbent: Mutex::new(None),
        exchange: Arc::new(UnitExchange::new()),
    };
    let incumbents_found = AtomicI64::new(0);

    let results: Vec<(WorkerVerdict, EngineStats)> = std::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|w| {
                let features = worker_features(config.features, config.seed, w, threads);
                let shared = &shared;
                let objective = objective.as_ref();
                let incumbents_found = &incumbents_found;
                scope.spawn(move || {
                    let out =
                        run_worker(model, objective, features, budget, shared, incumbents_found);
                    // A decisive verdict ends the race for everyone.
                    if out.0 != WorkerVerdict::Inconclusive {
                        shared.stop.store(true, Ordering::SeqCst);
                    }
                    out
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("portfolio worker panicked"))
            .collect()
    });

    // Aggregate statistics across workers.
    let mut engine = EngineStats::default();
    let mut winner = None;
    for (w, (verdict, s)) in results.iter().enumerate() {
        engine.conflicts += s.conflicts;
        engine.decisions += s.decisions;
        engine.propagations += s.propagations;
        engine.restarts += s.restarts;
        engine.deleted_clauses += s.deleted_clauses;
        if winner.is_none() && *verdict != WorkerVerdict::Inconclusive {
            winner = Some(w as u32);
        }
    }
    stats.engine = engine;
    stats.incumbents = incumbents_found.load(Ordering::Relaxed).max(0) as u64;
    stats.workers = threads as u32;
    stats.winner = winner;
    stats.elapsed = start.elapsed();

    let incumbent = shared.incumbent.lock().expect("incumbent poisoned").take();
    let infeasible = results.iter().any(|(v, _)| *v == WorkerVerdict::Infeasible);
    let exhausted = results
        .iter()
        .filter_map(|(v, _)| match v {
            WorkerVerdict::ExhaustedBelow(b) => Some(*b),
            _ => None,
        })
        .max();

    match (incumbent, objective) {
        // Feasibility race: a worker decided SAT (incumbent, objective 0).
        (Some((solution, _)), None) => Outcome::Optimal {
            solution,
            objective: 0,
        },
        (Some((solution, objective)), Some(_)) => {
            // Optimal iff some worker exhausted the space below the best
            // incumbent. `exhausted >= objective - 1` can only hold with
            // equality (a strictly better incumbent would contradict the
            // exhaustion proof), but compare defensively.
            let proven = exhausted.map(|b| b >= objective - 1).unwrap_or(false);
            if proven {
                Outcome::Optimal {
                    solution,
                    objective,
                }
            } else {
                Outcome::Feasible {
                    solution,
                    objective,
                }
            }
        }
        (None, _) if infeasible => Outcome::Infeasible,
        (None, _) => Outcome::Unknown,
    }
}
