//! Model construction API: binary variables, linear constraints, and a
//! linear objective.
//!
//! The paper solves its formulation with Gurobi; this crate is the
//! repository's self-contained substitute. Every variable is binary, which
//! is all the CGRA-mapping formulation requires (`F`, `R` and sink-specific
//! `R` variables are all 0/1).

use std::fmt;

/// A binary decision variable.
///
/// Variables are created by [`Model::new_var`] and are only meaningful for
/// the model that created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Var(pub(crate) u32);

impl Var {
    /// The variable's dense index (`0..model.num_vars()`).
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// The positive literal of this variable.
    pub fn lit(self) -> Lit {
        Lit::positive(self)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0)
    }
}

/// A literal: a variable or its negation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// The positive literal of `var` (true when the variable is 1).
    pub fn positive(var: Var) -> Lit {
        Lit(var.0 << 1)
    }

    /// The negative literal of `var` (true when the variable is 0).
    pub fn negative(var: Var) -> Lit {
        Lit(var.0 << 1 | 1)
    }

    /// The underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Whether this is the negated literal.
    pub fn is_negative(self) -> bool {
        self.0 & 1 == 1
    }

    /// The dense code of this literal (`2*var` or `2*var+1`).
    pub fn code(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_negative() {
            write!(f, "!x{}", self.0 >> 1)
        } else {
            write!(f, "x{}", self.0 >> 1)
        }
    }
}

/// A linear expression over binary variables: `Σ coeff·var + constant`.
///
/// # Examples
///
/// ```
/// use bilp::{LinExpr, Model};
/// let mut m = Model::new();
/// let x = m.new_var();
/// let y = m.new_var();
/// let e = LinExpr::new() + x + (3, y) + 2;
/// assert_eq!(e.constant(), 2);
/// assert_eq!(e.terms().len(), 2);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct LinExpr {
    terms: Vec<(i64, Var)>,
    constant: i64,
}

impl LinExpr {
    /// The empty expression (zero).
    pub fn new() -> Self {
        Self::default()
    }

    /// An expression that is the sum of the given variables.
    pub fn sum<I: IntoIterator<Item = Var>>(vars: I) -> Self {
        let mut e = LinExpr::new();
        for v in vars {
            e.add_term(1, v);
        }
        e
    }

    /// Adds `coeff * var` to the expression.
    pub fn add_term(&mut self, coeff: i64, var: Var) -> &mut Self {
        self.terms.push((coeff, var));
        self
    }

    /// Adds a constant.
    pub fn add_constant(&mut self, c: i64) -> &mut Self {
        self.constant += c;
        self
    }

    /// The terms of the expression (coefficients may repeat variables;
    /// normalisation merges them).
    pub fn terms(&self) -> &[(i64, Var)] {
        &self.terms
    }

    /// The constant part.
    pub fn constant(&self) -> i64 {
        self.constant
    }

    /// Evaluates the expression under a 0/1 assignment.
    pub fn evaluate(&self, value: impl Fn(Var) -> bool) -> i64 {
        self.constant
            + self
                .terms
                .iter()
                .map(|&(c, v)| if value(v) { c } else { 0 })
                .sum::<i64>()
    }

    /// Merges duplicate variables and drops zero coefficients.
    pub fn normalized(&self) -> LinExpr {
        let mut terms = self.terms.clone();
        terms.sort_by_key(|&(_, v)| v);
        let mut merged: Vec<(i64, Var)> = Vec::with_capacity(terms.len());
        for (c, v) in terms {
            match merged.last_mut() {
                Some((mc, mv)) if *mv == v => *mc += c,
                _ => merged.push((c, v)),
            }
        }
        merged.retain(|&(c, _)| c != 0);
        LinExpr {
            terms: merged,
            constant: self.constant,
        }
    }
}

impl From<Var> for LinExpr {
    fn from(v: Var) -> Self {
        let mut e = LinExpr::new();
        e.add_term(1, v);
        e
    }
}

impl std::ops::Add<Var> for LinExpr {
    type Output = LinExpr;

    fn add(mut self, v: Var) -> LinExpr {
        self.add_term(1, v);
        self
    }
}

impl std::ops::Add<(i64, Var)> for LinExpr {
    type Output = LinExpr;

    fn add(mut self, (c, v): (i64, Var)) -> LinExpr {
        self.add_term(c, v);
        self
    }
}

impl std::ops::Add<i64> for LinExpr {
    type Output = LinExpr;

    fn add(mut self, c: i64) -> LinExpr {
        self.add_constant(c);
        self
    }
}

/// Comparison operator of a linear constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Cmp {
    /// `expr <= rhs`
    Le,
    /// `expr >= rhs`
    Ge,
    /// `expr == rhs`
    Eq,
}

impl fmt::Display for Cmp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Cmp::Le => "<=",
            Cmp::Ge => ">=",
            Cmp::Eq => "==",
        })
    }
}

/// A linear constraint `expr cmp rhs`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Constraint {
    /// Left-hand side.
    pub expr: LinExpr,
    /// Comparison operator.
    pub cmp: Cmp,
    /// Right-hand side constant.
    pub rhs: i64,
}

impl Constraint {
    /// A standalone `expr cmp rhs` constraint, for callers that assemble
    /// constraint batches away from a [`Model`] (e.g. on worker threads)
    /// and append them later with [`Model::add_constraints`].
    pub fn new(expr: LinExpr, cmp: Cmp, rhs: i64) -> Self {
        Constraint { expr, cmp, rhs }
    }

    /// The clause `l1 ∨ l2 ∨ ...` as a standalone constraint — the same
    /// row [`Model::add_clause`] would post.
    pub fn clause<I: IntoIterator<Item = Lit>>(lits: I) -> Self {
        let mut e = LinExpr::new();
        for l in lits {
            if l.is_negative() {
                e.add_term(-1, l.var());
                e.add_constant(1);
            } else {
                e.add_term(1, l.var());
            }
        }
        Constraint::new(e, Cmp::Ge, 1)
    }

    /// The implication `a → b` as a standalone constraint.
    pub fn implies(a: Lit, b: Lit) -> Self {
        Constraint::clause([!a, b])
    }

    /// `Σ vars == 1` as a standalone constraint.
    pub fn exactly_one<I: IntoIterator<Item = Var>>(vars: I) -> Self {
        Constraint::new(LinExpr::sum(vars), Cmp::Eq, 1)
    }

    /// `Σ vars <= 1` as a standalone constraint.
    pub fn at_most_one<I: IntoIterator<Item = Var>>(vars: I) -> Self {
        Constraint::new(LinExpr::sum(vars), Cmp::Le, 1)
    }

    /// Whether the constraint holds under a 0/1 assignment.
    pub fn is_satisfied(&self, value: impl Fn(Var) -> bool) -> bool {
        let lhs = self.expr.evaluate(value);
        match self.cmp {
            Cmp::Le => lhs <= self.rhs,
            Cmp::Ge => lhs >= self.rhs,
            Cmp::Eq => lhs == self.rhs,
        }
    }
}

/// A 0-1 integer linear program: binary variables, linear constraints and
/// an optional linear objective to *minimize*.
///
/// # Examples
///
/// Exactly-one with a preference for the cheaper option:
///
/// ```
/// use bilp::{LinExpr, Model, Solver, Outcome};
/// let mut m = Model::new();
/// let a = m.new_var();
/// let b = m.new_var();
/// m.add_eq(LinExpr::sum([a, b]), 1);
/// m.minimize(LinExpr::new() + (5, a) + (3, b));
/// match Solver::new().solve(&m) {
///     Outcome::Optimal { objective, solution } => {
///         assert_eq!(objective, 3);
///         assert!(solution.value(b));
///     }
///     other => panic!("unexpected outcome {other:?}"),
/// }
/// ```
#[derive(Debug, Clone, Default)]
pub struct Model {
    num_vars: u32,
    constraints: Vec<Constraint>,
    objective: Option<LinExpr>,
    hints: Vec<(Var, f64, bool)>,
}

impl Model {
    /// Creates an empty model.
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a fresh binary variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.num_vars);
        self.num_vars += 1;
        v
    }

    /// Adds `n` fresh binary variables.
    pub fn new_vars(&mut self, n: usize) -> Vec<Var> {
        (0..n).map(|_| self.new_var()).collect()
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars as usize
    }

    /// The constraints added so far.
    pub fn constraints(&self) -> &[Constraint] {
        &self.constraints
    }

    /// The objective, if one was set.
    pub fn objective(&self) -> Option<&LinExpr> {
        self.objective.as_ref()
    }

    /// Adds a constraint `expr cmp rhs`.
    pub fn add(&mut self, expr: LinExpr, cmp: Cmp, rhs: i64) {
        self.constraints.push(Constraint { expr, cmp, rhs });
    }

    /// Appends a batch of standalone constraints in order. The result is
    /// identical to calling [`Model::add`] once per constraint, so
    /// batches built concurrently (e.g. via `cgra_par::par_map`, which
    /// preserves input order) can be merged deterministically.
    pub fn add_constraints<I: IntoIterator<Item = Constraint>>(&mut self, batch: I) {
        self.constraints.extend(batch);
    }

    /// Adds `expr <= rhs`.
    pub fn add_le(&mut self, expr: LinExpr, rhs: i64) {
        self.add(expr, Cmp::Le, rhs);
    }

    /// Adds `expr >= rhs`.
    pub fn add_ge(&mut self, expr: LinExpr, rhs: i64) {
        self.add(expr, Cmp::Ge, rhs);
    }

    /// Adds `expr == rhs`.
    pub fn add_eq(&mut self, expr: LinExpr, rhs: i64) {
        self.add(expr, Cmp::Eq, rhs);
    }

    /// Adds the clause `l1 ∨ l2 ∨ ...` (at least one literal true).
    /// Encoded as Σ lit >= 1, where a negative literal contributes
    /// `1 - var`.
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) {
        self.constraints.push(Constraint::clause(lits));
    }

    /// Adds `a -> b` (if `a` is true then `b` is true).
    pub fn add_implies(&mut self, a: Lit, b: Lit) {
        self.add_clause([!a, b]);
    }

    /// Fixes a variable to a value.
    pub fn fix(&mut self, var: Var, value: bool) {
        self.add_eq(LinExpr::from(var), i64::from(value));
    }

    /// Adds `Σ vars == 1`.
    pub fn add_exactly_one<I: IntoIterator<Item = Var>>(&mut self, vars: I) {
        self.add_eq(LinExpr::sum(vars), 1);
    }

    /// Adds `Σ vars <= 1`.
    pub fn add_at_most_one<I: IntoIterator<Item = Var>>(&mut self, vars: I) {
        self.add_le(LinExpr::sum(vars), 1);
    }

    /// Adds the reified constraint `act -> (expr cmp rhs)`.
    ///
    /// Uses a big-M relaxation that is exact over 0/1 variables: when
    /// `act` is false every assignment satisfies the posted rows, and
    /// when `act` is true they are equivalent to the original
    /// constraint. Directions that hold for every assignment are
    /// skipped, so reifying a tautology adds nothing. The infeasibility
    /// explainer reifies each constraint group under a fresh activation
    /// literal and asks for an unsat core over those literals.
    pub fn add_reified(&mut self, constraint: &Constraint, act: Lit) {
        let expr = &constraint.expr;
        let terms = expr.terms();
        let max: i64 = expr.constant() + terms.iter().map(|&(c, _)| c.max(0)).sum::<i64>();
        let min: i64 = expr.constant() + terms.iter().map(|&(c, _)| c.min(0)).sum::<i64>();
        if matches!(constraint.cmp, Cmp::Le | Cmp::Eq) {
            let slack = max - constraint.rhs;
            if slack > 0 {
                // act -> expr <= rhs, as expr + slack*act <= rhs + slack.
                let mut e = expr.clone();
                add_indicator_term(&mut e, slack, act);
                self.add_le(e, constraint.rhs + slack);
            }
        }
        if matches!(constraint.cmp, Cmp::Ge | Cmp::Eq) {
            let slack = constraint.rhs - min;
            if slack > 0 {
                // act -> expr >= rhs, as expr - slack*act >= rhs - slack.
                let mut e = expr.clone();
                add_indicator_term(&mut e, -slack, act);
                self.add_ge(e, constraint.rhs - slack);
            }
        }
    }

    /// Sets the objective to *minimize*.
    pub fn minimize(&mut self, expr: LinExpr) {
        self.objective = Some(expr);
    }

    /// Suggests a branching priority and initial polarity for a variable.
    ///
    /// Higher-priority variables are decided first; `phase` is the value
    /// tried first. Hints never affect correctness, only search order —
    /// e.g. the CGRA mapper suggests deciding placement variables before
    /// routing variables.
    pub fn suggest_branch(&mut self, var: Var, priority: f64, phase: bool) {
        self.hints.push((var, priority, phase));
    }

    /// The branching hints registered so far.
    pub fn branch_hints(&self) -> &[(Var, f64, bool)] {
        &self.hints
    }

    /// Checks a full assignment against every constraint, returning the
    /// index of the first violated constraint.
    pub fn check(&self, value: impl Fn(Var) -> bool + Copy) -> Result<(), usize> {
        for (i, c) in self.constraints.iter().enumerate() {
            if !c.is_satisfied(value) {
                return Err(i);
            }
        }
        Ok(())
    }
}

/// Appends `coef * lit` to `expr`, where a negative literal stands for
/// `1 - var`.
fn add_indicator_term(expr: &mut LinExpr, coef: i64, lit: Lit) {
    if lit.is_negative() {
        expr.add_term(-coef, lit.var());
        expr.add_constant(coef);
    } else {
        expr.add_term(coef, lit.var());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_codes() {
        let v = Var(3);
        assert_eq!(v.lit().code(), 6);
        assert_eq!((!v.lit()).code(), 7);
        assert_eq!(!(!v.lit()), v.lit());
        assert!((!v.lit()).is_negative());
        assert_eq!((!v.lit()).var(), v);
    }

    #[test]
    fn linexpr_evaluate_and_normalize() {
        let mut m = Model::new();
        let x = m.new_var();
        let y = m.new_var();
        let e = LinExpr::new() + (2, x) + (3, y) + (-2, x) + 1;
        let n = e.normalized();
        assert_eq!(n.terms(), &[(3, y)]);
        assert_eq!(n.constant(), 1);
        assert_eq!(e.evaluate(|v| v == y), 4);
    }

    #[test]
    fn clause_encoding() {
        let mut m = Model::new();
        let x = m.new_var();
        let y = m.new_var();
        m.add_clause([x.lit(), !y.lit()]);
        let c = &m.constraints()[0];
        // x + (1 - y) >= 1  <=>  x - y >= 0
        assert!(c.is_satisfied(|_| false)); // x=0,y=0 -> 1 >= 1
        assert!(!c.is_satisfied(|v| v == y)); // x=0,y=1 -> 0 >= 1 fails
    }

    #[test]
    fn check_reports_violation_index() {
        let mut m = Model::new();
        let x = m.new_var();
        m.add_ge(LinExpr::from(x), 1);
        m.add_le(LinExpr::from(x), 0);
        assert_eq!(m.check(|_| true), Err(1));
        assert_eq!(m.check(|_| false), Err(0));
    }

    #[test]
    fn exactly_one_helpers() {
        let mut m = Model::new();
        let vs = m.new_vars(3);
        m.add_exactly_one(vs.clone());
        assert!(m.constraints()[0].is_satisfied(|v| v == vs[1]));
        assert!(!m.constraints()[0].is_satisfied(|_| true));
        assert!(!m.constraints()[0].is_satisfied(|_| false));
    }

    /// Exhaustively compare `act -> (expr cmp rhs)` with its reified
    /// encoding over every 0/1 assignment, for all three comparisons.
    #[test]
    fn reified_matches_implication_semantics() {
        for cmp in [Cmp::Le, Cmp::Ge, Cmp::Eq] {
            for rhs in -3..=4 {
                let mut m = Model::new();
                let x = m.new_var();
                let y = m.new_var();
                let act = m.new_var();
                let expr = LinExpr::new() + (2, x) + (-3, y) + 1;
                let original = Constraint {
                    expr: expr.clone(),
                    cmp,
                    rhs,
                };
                m.add_reified(&original, act.lit());
                for bits in 0..8u32 {
                    let value = |v: Var| bits & (1 << v.0) != 0;
                    let expected = !value(act) || original.is_satisfied(value);
                    assert_eq!(
                        m.check(value).is_ok(),
                        expected,
                        "cmp={cmp:?} rhs={rhs} bits={bits:03b}"
                    );
                }
            }
        }
    }
}

/// Serialises a model in the CPLEX LP text format, which Gurobi, CPLEX,
/// SCIP and most other MIP solvers read. Useful for cross-checking this
/// crate's verdicts against an external solver.
///
/// Variables are named `x0..xN` and declared binary.
///
/// # Examples
///
/// ```
/// use bilp::{LinExpr, Model};
/// let mut m = Model::new();
/// let a = m.new_var();
/// let b = m.new_var();
/// m.add_ge(LinExpr::sum([a, b]), 1);
/// m.minimize(LinExpr::from(a));
/// let lp = bilp::to_lp_format(&m);
/// assert!(lp.contains("Minimize"));
/// assert!(lp.contains("Binaries"));
/// ```
pub fn to_lp_format(model: &Model) -> String {
    use std::fmt::Write as _;
    fn write_expr(out: &mut String, expr: &LinExpr) {
        let norm = expr.normalized();
        if norm.terms().is_empty() {
            out.push('0');
            return;
        }
        for (i, &(c, v)) in norm.terms().iter().enumerate() {
            if i == 0 {
                if c < 0 {
                    let _ = write!(out, "- ");
                }
            } else if c < 0 {
                let _ = write!(out, " - ");
            } else {
                let _ = write!(out, " + ");
            }
            let mag = c.unsigned_abs();
            if mag == 1 {
                let _ = write!(out, "x{}", v.0);
            } else {
                let _ = write!(out, "{mag} x{}", v.0);
            }
        }
    }

    let mut out = String::new();
    out.push_str("Minimize\n obj: ");
    match model.objective() {
        Some(obj) => write_expr(&mut out, obj),
        None => out.push('0'),
    }
    out.push_str("\nSubject To\n");
    for (i, c) in model.constraints().iter().enumerate() {
        let _ = write!(out, " c{i}: ");
        write_expr(&mut out, &c.expr);
        let cmp = match c.cmp {
            Cmp::Le => "<=",
            Cmp::Ge => ">=",
            Cmp::Eq => "=",
        };
        let _ = writeln!(out, " {cmp} {}", c.rhs - c.expr.constant());
    }
    out.push_str("Binaries\n");
    for i in 0..model.num_vars() {
        let _ = writeln!(out, " x{i}");
    }
    out.push_str("End\n");
    out
}

#[cfg(test)]
mod lp_tests {
    use super::*;

    #[test]
    fn lp_format_structure() {
        let mut m = Model::new();
        let a = m.new_var();
        let b = m.new_var();
        let mut e = LinExpr::new();
        e.add_term(2, a);
        e.add_term(-3, b);
        e.add_constant(1);
        m.add_le(e, 4);
        m.add_exactly_one([a, b]);
        let mut obj = LinExpr::new();
        obj.add_term(1, a);
        obj.add_term(5, b);
        m.minimize(obj);
        let lp = to_lp_format(&m);
        assert!(lp.contains("obj: x0 + 5 x1"));
        // Constant folded into the rhs: 2a - 3b <= 3.
        assert!(lp.contains("c0: 2 x0 - 3 x1 <= 3"));
        assert!(lp.contains("c1: x0 + x1 = 1"));
        assert!(lp.contains(" x0\n x1\n"));
        assert!(lp.ends_with("End\n"));
    }

    #[test]
    fn lp_format_feasibility_only() {
        let mut m = Model::new();
        let a = m.new_var();
        m.add_clause([a.lit()]);
        let lp = to_lp_format(&m);
        assert!(lp.contains("obj: 0"));
    }
}
