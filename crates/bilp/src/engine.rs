//! The CDCL search engine with native pseudo-Boolean propagation.
//!
//! This is a conflict-driven clause-learning SAT core in the MiniSat
//! lineage (two-watched-literal clause propagation, 1UIP learning, VSIDS
//! decision ordering with phase saving, Luby restarts, learnt-clause
//! database reduction) extended with a counting propagator for
//! pseudo-Boolean *at-most* constraints. PB propagations and conflicts are
//! explained with clauses, which keeps CDCL learning sound without
//! cutting-planes reasoning.
//!
//! The engine supports adding constraints between successive `solve` calls
//! (always at decision level 0) and, more importantly, **solving under
//! assumptions** ([`Engine::solve_under_assumptions`]): a set of literals
//! is held true for one search without ever becoming permanent, so the
//! branch-and-bound loop in [`crate::solve`] probes objective bounds
//! through activation literals on one persistent engine — every learnt
//! clause stays valid across the whole descent. When an assumption set is
//! refuted, [`Engine::unsat_core`] returns the subset of assumptions the
//! final conflict depends on.
//!
//! Learnt-clause management is LBD-based (Audemard & Simon's "glue"
//! metric): each learnt clause records the number of distinct decision
//! levels among its literals at learning time. Reduction protects glue
//! clauses (`lbd <= glue_lbd`) unconditionally and deletes the worst half
//! of the rest, ranked by LBD then activity, with the mid/local tier split
//! tracked in [`EngineStats`].

use crate::model::{Lit, Var};
use crate::normalize::NormConstraint;
use crate::portfolio::ClauseExchange;
use crate::proof::{ProofLog, ProofOrigin};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

const UNASSIGNED: i8 = 2;

/// How many propagations + conflicts may pass between two wall-clock /
/// interrupt polls. Checking `Instant::now()` on every propagation would
/// dominate the hot loop; checking only on conflicts makes deadlines
/// unresponsive on propagation-heavy instances. 1024 combined events
/// keeps the overhead unmeasurable while bounding the poll latency to a
/// few microseconds of solver work.
const POLL_INTERVAL: u64 = 1024;

/// Feature toggles and diversification knobs for the search engine.
///
/// The boolean toggles exist for ablation studies (all default to
/// enabled). The `seed` / `random_tiebreak` / `default_phase` /
/// `restart_base` knobs diversify engines for portfolio solving
/// ([`crate::portfolio`]): each portfolio worker runs the same constraint
/// database under a different configuration, racing to the first answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineFeatures {
    /// VSIDS activity-driven decision ordering (off = static order).
    pub vsids: bool,
    /// Phase saving (off = always decide negative first).
    pub phase_saving: bool,
    /// Conflict-clause minimisation.
    pub minimization: bool,
    /// Luby restarts.
    pub restarts: bool,
    /// Seed for the engine's internal tie-breaking RNG.
    pub seed: u64,
    /// Occasionally (about 1 decision in 64) branch on a random variable
    /// instead of the activity-ordered one. Off by default: the baseline
    /// single-threaded engine stays fully deterministic.
    pub random_tiebreak: bool,
    /// Initial decision polarity before any phase has been saved.
    pub default_phase: bool,
    /// Base conflict interval of the Luby restart schedule (the classic
    /// MiniSat value 256 by default; portfolio workers vary it).
    pub restart_base: u64,
    /// Initial learnt-clause cap: database reduction triggers when the
    /// number of live learnt clauses exceeds it (the cap then grows
    /// geometrically). Historically hardcoded to 20 000.
    pub learnt_cap: usize,
    /// Learnt clauses with LBD at or below this are *glue* (core tier):
    /// they are never deleted by database reduction.
    pub glue_lbd: u32,
    /// Upper LBD bound of the *mid* tier; clauses above it are *local*.
    /// The tier only affects reduction bookkeeping and deletion order —
    /// local clauses are deleted before mid ones at equal activity.
    pub mid_lbd: u32,
    /// Maximum LBD for a learnt clause to be exported to the portfolio
    /// clause exchange (units are always exported).
    pub share_lbd: u32,
    /// Maximum length for an exported learnt clause.
    pub share_len: usize,
}

impl Default for EngineFeatures {
    fn default() -> Self {
        EngineFeatures {
            vsids: true,
            phase_saving: true,
            minimization: true,
            restarts: true,
            seed: 0,
            random_tiebreak: false,
            default_phase: false,
            restart_base: 256,
            learnt_cap: 20_000,
            glue_lbd: 2,
            mid_lbd: 6,
            share_lbd: 2,
            share_len: 8,
        }
    }
}

/// Search budget for one `solve` call.
#[derive(Debug, Clone, Copy, Default)]
pub struct Budget {
    /// Wall-clock deadline.
    pub deadline: Option<Instant>,
    /// Maximum number of conflicts.
    pub conflict_limit: Option<u64>,
}

impl Budget {
    /// An unlimited budget.
    pub fn unlimited() -> Self {
        Budget::default()
    }
}

/// Result of one engine search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SatResult {
    /// A satisfying assignment was found (query it with
    /// [`Engine::model_value`]).
    Sat,
    /// The constraint set is unsatisfiable.
    Unsat,
    /// The budget was exhausted first.
    Unknown,
}

/// Cumulative search statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses deleted by database reduction.
    pub deleted_clauses: u64,
    /// Number of clauses learnt from conflicts (including units).
    pub learnt_clauses: u64,
    /// Sum of learnt-clause LBD values (mean = `lbd_total / learnt_clauses`).
    pub lbd_total: u64,
    /// Mid-tier clauses (`glue_lbd < lbd <= mid_lbd`) deleted by reduction.
    pub deleted_mid: u64,
    /// Local-tier clauses (`lbd > mid_lbd`) deleted by reduction.
    pub deleted_local: u64,
    /// Core-tier (glue) clauses alive at the most recent reduction.
    pub kept_core: u64,
    /// Mid-tier clauses surviving the most recent reduction.
    pub kept_mid: u64,
    /// Local-tier clauses surviving the most recent reduction.
    pub kept_local: u64,
    /// Clauses imported from the portfolio clause exchange.
    pub imported_clauses: u64,
    /// Clauses exported to the portfolio clause exchange.
    pub exported_clauses: u64,
}

impl EngineStats {
    /// Mean LBD over every clause learnt so far (0 when none were).
    pub fn mean_lbd(&self) -> f64 {
        if self.learnt_clauses == 0 {
            0.0
        } else {
            self.lbd_total as f64 / self.learnt_clauses as f64
        }
    }

    /// Adds `other`'s additive counters into `self`, so the stats of a
    /// multi-solver run (e.g. a feasibility solve followed by a separate
    /// optimisation solve) can be reported as one total. The
    /// database-occupancy snapshots (`kept_core`/`kept_mid`/`kept_local`
    /// describe the *most recent* reduction, not a running sum) keep
    /// `self`'s values.
    pub fn absorb(&mut self, other: &EngineStats) {
        self.conflicts += other.conflicts;
        self.decisions += other.decisions;
        self.propagations += other.propagations;
        self.restarts += other.restarts;
        self.deleted_clauses += other.deleted_clauses;
        self.learnt_clauses += other.learnt_clauses;
        self.lbd_total += other.lbd_total;
        self.deleted_mid += other.deleted_mid;
        self.deleted_local += other.deleted_local;
        self.imported_clauses += other.imported_clauses;
        self.exported_clauses += other.exported_clauses;
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Reason {
    None,
    Clause(u32),
    Linear(u32),
}

#[derive(Debug)]
struct Clause {
    lits: Vec<Lit>,
    learnt: bool,
    activity: f64,
    deleted: bool,
    /// Literal-block distance at learning/import time (0 for problem
    /// clauses, which are never reduction candidates anyway).
    lbd: u32,
}

#[derive(Debug, Clone, Copy)]
struct Watch {
    clause: u32,
    blocker: Lit,
}

#[derive(Debug)]
struct Linear {
    terms: Vec<(u64, Lit)>,
    bound: u64,
    sum_true: u64,
    max_coeff: u64,
}

#[derive(Debug, Clone, Copy)]
enum Conflict {
    Clause(u32),
    Linear(u32),
}

/// Indexed max-heap over variable activities.
#[derive(Debug, Default)]
struct VarOrder {
    heap: Vec<u32>,
    pos: Vec<i32>,
    activity: Vec<f64>,
}

impl VarOrder {
    fn grow_to(&mut self, n: usize) {
        while self.activity.len() < n {
            let v = self.activity.len() as u32;
            self.activity.push(0.0);
            self.pos.push(-1);
            self.insert(v);
        }
    }

    fn in_heap(&self, v: u32) -> bool {
        self.pos[v as usize] >= 0
    }

    fn insert(&mut self, v: u32) {
        if self.in_heap(v) {
            return;
        }
        self.pos[v as usize] = self.heap.len() as i32;
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1);
    }

    fn pop_max(&mut self) -> Option<u32> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().expect("non-empty");
        self.pos[top as usize] = -1;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0);
        }
        Some(top)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn peek_at(&self, i: usize) -> u32 {
        self.heap[i]
    }

    /// Removes the element at heap position `i` (used by randomised
    /// decision tie-breaking, which picks a heap slot uniformly).
    fn remove_at(&mut self, i: usize) -> u32 {
        let v = self.heap[i];
        let last = self.heap.pop().expect("non-empty");
        self.pos[v as usize] = -1;
        if i < self.heap.len() {
            self.heap[i] = last;
            self.pos[last as usize] = i as i32;
            // The displaced element may need to move either direction.
            self.sift_up(i);
            let p = self.pos[last as usize] as usize;
            self.sift_down(p);
        }
        v
    }

    fn bump(&mut self, v: u32, inc: f64) -> bool {
        self.activity[v as usize] += inc;
        let rescale = self.activity[v as usize] > 1e100;
        if self.in_heap(v) {
            let p = self.pos[v as usize] as usize;
            self.sift_up(p);
        }
        rescale
    }

    fn rescale(&mut self) {
        for a in &mut self.activity {
            *a *= 1e-100;
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.activity[self.heap[i] as usize] <= self.activity[self.heap[parent] as usize] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len()
                && self.activity[self.heap[l] as usize] > self.activity[self.heap[best] as usize]
            {
                best = l;
            }
            if r < self.heap.len()
                && self.activity[self.heap[r] as usize] > self.activity[self.heap[best] as usize]
            {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i] as usize] = i as i32;
        self.pos[self.heap[j] as usize] = j as i32;
    }
}

/// The CDCL + pseudo-Boolean search engine.
///
/// Construct with [`Engine::new`], add constraints (only at decision level
/// zero, i.e. before or between `solve` calls), then call
/// [`Engine::solve`].
#[derive(Debug)]
pub struct Engine {
    num_vars: usize,
    assign: Vec<i8>,
    level: Vec<u32>,
    reason: Vec<Reason>,
    trail_pos: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    clauses: Vec<Clause>,
    watches: Vec<Vec<Watch>>,
    linears: Vec<Linear>,
    lin_occ: Vec<Vec<(u32, u32)>>,
    order: VarOrder,
    phase: Vec<bool>,
    var_inc: f64,
    var_decay: f64,
    cla_inc: f64,
    ok: bool,
    n_learnt: usize,
    learnt_cap: usize,
    stats: EngineStats,
    seen: Vec<bool>,
    features: EngineFeatures,
    rng_state: u64,
    interrupt: Option<Arc<AtomicBool>>,
    exchange: Option<Arc<ClauseExchange>>,
    exchange_cursor: usize,
    bound_tag: i64,
    worker_id: usize,
    /// Clauses mentioning a variable at or above this index are never
    /// exported (activation variables are engine-local).
    share_var_limit: usize,
    /// Assumption literals for the current `solve_under_assumptions` call.
    assumptions: Vec<Lit>,
    /// Subset of the assumptions responsible for the last assumption
    /// failure (empty when the database itself is unsatisfiable).
    last_core: Vec<Lit>,
    /// Level-stamp scratch for LBD computation.
    lbd_stamp: Vec<u64>,
    lbd_counter: u64,
    /// When present, every clause added to or deleted from the database
    /// beyond the input constraints is recorded here (certification).
    proof: Option<ProofLog>,
    /// Soft cap on learnt-DB + proof bytes; exceeding it triggers an
    /// emergency reduction and, failing that, a clean `Unknown` exit.
    mem_limit: Option<usize>,
    /// Approximate bytes held by learnt clauses.
    learnt_bytes: usize,
}

/// Approximate heap footprint of a clause holding `n` literals.
fn clause_bytes(n: usize) -> usize {
    // Clause struct + Vec header + 4 bytes per literal + two watches.
    64 + 4 * n
}

impl Engine {
    /// Creates an engine over `num_vars` binary variables.
    pub fn new(num_vars: usize) -> Self {
        let mut order = VarOrder::default();
        order.grow_to(num_vars);
        Engine {
            num_vars,
            assign: vec![UNASSIGNED; num_vars],
            level: vec![0; num_vars],
            reason: vec![Reason::None; num_vars],
            trail_pos: vec![0; num_vars],
            trail: Vec::with_capacity(num_vars),
            trail_lim: Vec::new(),
            qhead: 0,
            clauses: Vec::new(),
            watches: vec![Vec::new(); num_vars * 2],
            linears: Vec::new(),
            lin_occ: vec![Vec::new(); num_vars * 2],
            order,
            phase: vec![false; num_vars],
            var_inc: 1.0,
            var_decay: 0.95,
            cla_inc: 1.0,
            ok: true,
            n_learnt: 0,
            learnt_cap: 20_000,
            stats: EngineStats::default(),
            seen: vec![false; num_vars],
            features: EngineFeatures::default(),
            rng_state: 0x9e37_79b9_7f4a_7c15,
            interrupt: None,
            exchange: None,
            exchange_cursor: 0,
            bound_tag: i64::MAX,
            worker_id: 0,
            share_var_limit: usize::MAX,
            assumptions: Vec::new(),
            last_core: Vec::new(),
            lbd_stamp: vec![0; num_vars + 1],
            lbd_counter: 0,
            proof: None,
            mem_limit: None,
            learnt_bytes: 0,
        }
    }

    /// Adds a fresh variable and returns it. Used by the incremental
    /// optimisation loop to mint activation literals for reified
    /// objective-bound constraints; such variables live beyond the
    /// original model's index space.
    pub fn add_var(&mut self) -> Var {
        let v = self.num_vars as u32;
        self.num_vars += 1;
        self.assign.push(UNASSIGNED);
        self.level.push(0);
        self.reason.push(Reason::None);
        self.trail_pos.push(0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.lin_occ.push(Vec::new());
        self.lin_occ.push(Vec::new());
        self.phase.push(self.features.default_phase);
        self.seen.push(false);
        self.lbd_stamp.push(0);
        self.order.grow_to(self.num_vars);
        Var(v)
    }

    /// Configures the engine's feature toggles and diversification knobs.
    ///
    /// Intended to be called before the first `solve`; it resets every
    /// saved phase to the configured default polarity.
    pub fn set_features(&mut self, features: EngineFeatures) {
        self.features = features;
        self.rng_state = features.seed ^ 0x9e37_79b9_7f4a_7c15;
        if self.rng_state == 0 {
            self.rng_state = 1;
        }
        self.learnt_cap = features.learnt_cap.max(16);
        self.phase.fill(features.default_phase);
    }

    /// Installs a cooperative-cancellation flag: when another thread sets
    /// it, the next budget poll returns [`SatResult::Unknown`].
    pub fn set_interrupt(&mut self, flag: Arc<AtomicBool>) {
        self.interrupt = Some(flag);
    }

    /// Connects this engine to a portfolio clause exchange as worker
    /// `worker_id`. Learnt units and low-LBD clauses over variables below
    /// `share_var_limit` are published with the engine's current
    /// objective-bound tag; foreign clauses are imported at solve start
    /// and at restart boundaries. `share_var_limit` keeps engine-local
    /// activation variables (see [`Engine::add_var`]) out of the pool.
    pub fn set_exchange(
        &mut self,
        exchange: Arc<ClauseExchange>,
        worker_id: usize,
        share_var_limit: usize,
    ) {
        self.exchange_cursor = exchange.len();
        self.exchange = Some(exchange);
        self.worker_id = worker_id;
        self.share_var_limit = share_var_limit;
    }

    /// Records the objective bound under which subsequently learnt units
    /// are valid (`i64::MAX` = no bound constraint added yet). Bounds in
    /// branch-and-bound only ever tighten, so the tag is monotone.
    pub fn set_bound_tag(&mut self, bound: i64) {
        self.bound_tag = bound;
    }

    /// Installs a proof log: from now on every learnt, imported or
    /// deleted clause is recorded so an `Unsat` verdict can be replayed
    /// by the independent checker. Install *after* the input constraints
    /// have been added — the checker derives those from the model itself.
    pub fn set_proof(&mut self, proof: ProofLog) {
        self.proof = Some(proof);
    }

    /// Removes and returns the proof log, if one was installed.
    pub fn take_proof(&mut self) -> Option<ProofLog> {
        self.proof.take()
    }

    /// Caps the approximate bytes held by the learnt database plus the
    /// proof log. When the cap is exceeded the engine first attempts an
    /// emergency database reduction and otherwise returns
    /// [`SatResult::Unknown`] instead of growing without bound.
    pub fn set_mem_limit(&mut self, bytes: usize) {
        self.mem_limit = Some(bytes);
    }

    /// Whether the memory cap is currently exceeded.
    fn over_mem_limit(&self) -> bool {
        let Some(limit) = self.mem_limit else {
            return false;
        };
        let proof_bytes = self.proof.as_ref().map_or(0, |p| p.bytes());
        self.learnt_bytes + proof_bytes > limit
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64*: plenty for decision tie-breaking.
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Search statistics so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Whether the constraint database is already known unsatisfiable.
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    /// Applies a branching hint: initial activity and preferred polarity.
    pub fn set_branch_hint(&mut self, var: Var, priority: f64, phase: bool) {
        self.phase[var.index()] = phase;
        self.order.bump(var.0, priority);
    }

    fn value_lit(&self, l: Lit) -> i8 {
        let a = self.assign[l.var().index()];
        if a == UNASSIGNED {
            UNASSIGNED
        } else if l.is_negative() {
            1 - a
        } else {
            a
        }
    }

    fn is_true(&self, l: Lit) -> bool {
        self.value_lit(l) == 1
    }

    fn is_false(&self, l: Lit) -> bool {
        self.value_lit(l) == 0
    }

    fn is_unassigned(&self, l: Lit) -> bool {
        self.value_lit(l) == UNASSIGNED
    }

    /// The value of `var` in the most recent satisfying assignment.
    ///
    /// Only meaningful immediately after [`Engine::solve`] returned
    /// [`SatResult::Sat`] (the full trail is the model then).
    pub fn model_value(&self, var: Var) -> bool {
        self.assign[var.index()] == 1
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Adds a normalised constraint at decision level 0.
    ///
    /// Returns `false` if the database became unsatisfiable.
    pub fn add_norm(&mut self, nc: NormConstraint) -> bool {
        self.cancel_until(0);
        if !self.ok {
            return false;
        }
        match nc {
            NormConstraint::False => {
                self.ok = false;
            }
            NormConstraint::Unit(l) => {
                if self.is_false(l) {
                    self.ok = false;
                } else if self.is_unassigned(l) {
                    self.enqueue(l, Reason::None);
                }
            }
            NormConstraint::Clause(mut lits) => {
                // Deduplicate; drop if tautological or already satisfied;
                // remove false literals (all at level 0 here).
                lits.sort_by_key(|l| l.code());
                lits.dedup();
                if lits.windows(2).any(|w| w[0].var() == w[1].var()) {
                    return self.ok; // contains l and !l: tautology
                }
                if lits.iter().any(|&l| self.is_true(l)) {
                    return self.ok;
                }
                lits.retain(|&l| !self.is_false(l));
                match lits.len() {
                    0 => self.ok = false,
                    1 => {
                        self.enqueue(lits[0], Reason::None);
                    }
                    _ => {
                        self.attach_clause(lits, false, 0);
                    }
                }
            }
            NormConstraint::AtMost { terms, bound } => {
                let max_coeff = terms.iter().map(|&(a, _)| a).max().unwrap_or(0);
                let mut sum_true = 0u64;
                for &(a, l) in &terms {
                    if self.is_true(l) {
                        sum_true += a;
                    }
                }
                let idx = self.linears.len() as u32;
                for (ti, &(_, l)) in terms.iter().enumerate() {
                    self.lin_occ[l.code()].push((idx, ti as u32));
                }
                self.linears.push(Linear {
                    terms,
                    bound,
                    sum_true,
                    max_coeff,
                });
                if sum_true > bound {
                    self.ok = false;
                } else {
                    // Propagate any literal already forced at level 0.
                    if let Some(confl) = self.propagate_linear_scan(idx) {
                        let _ = confl;
                        self.ok = false;
                    }
                }
            }
        }
        if self.ok {
            // Settle root-level propagation.
            if self.propagate().is_some() {
                self.ok = false;
            }
        }
        self.ok
    }

    fn attach_clause(&mut self, lits: Vec<Lit>, learnt: bool, lbd: u32) -> u32 {
        debug_assert!(lits.len() >= 2);
        let idx = self.clauses.len() as u32;
        let w0 = lits[0];
        let w1 = lits[1];
        self.clauses.push(Clause {
            lits,
            learnt,
            activity: 0.0,
            deleted: false,
            lbd,
        });
        if learnt {
            self.n_learnt += 1;
            self.learnt_bytes += clause_bytes(self.clauses[idx as usize].lits.len());
        }
        self.watches[(!w0).code()].push(Watch {
            clause: idx,
            blocker: w1,
        });
        self.watches[(!w1).code()].push(Watch {
            clause: idx,
            blocker: w0,
        });
        idx
    }

    fn enqueue(&mut self, l: Lit, reason: Reason) {
        debug_assert!(self.is_unassigned(l));
        // Linear counters update eagerly so that backtracking (which
        // decrements for every popped literal) stays symmetric even when a
        // conflict interrupts propagation before this literal is processed.
        for k in 0..self.lin_occ[l.code()].len() {
            let (lin, term) = self.lin_occ[l.code()][k];
            let c = self.linears[lin as usize].terms[term as usize].0;
            self.linears[lin as usize].sum_true += c;
        }
        let v = l.var().index();
        self.assign[v] = if l.is_negative() { 0 } else { 1 };
        self.level[v] = self.decision_level();
        self.reason[v] = if self.decision_level() == 0 {
            // Level-0 assignments never participate in conflict analysis,
            // so dropping the reason keeps learnt-DB reduction safe.
            Reason::None
        } else {
            reason
        };
        self.trail_pos[v] = self.trail.len() as u32;
        self.trail.push(l);
        self.stats.propagations += 1;
    }

    /// Propagates until fixpoint; returns a conflict if one arises.
    fn propagate(&mut self) -> Option<Conflict> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;

            // Clause propagation: clauses watching !p (p became true, so
            // the watched literal !p became false).
            let mut i = 0;
            let mut watches = std::mem::take(&mut self.watches[p.code()]);
            let mut keep = watches.len();
            let mut conflict = None;
            'watches: while i < keep {
                let w = watches[i];
                if self.is_true(w.blocker) {
                    i += 1;
                    continue;
                }
                let cidx = w.clause as usize;
                // Deleted clauses may linger in watch lists until rebuild.
                if self.clauses[cidx].deleted {
                    watches.swap(i, keep - 1);
                    keep -= 1;
                    continue;
                }
                let false_lit = !p;
                {
                    let lits = &mut self.clauses[cidx].lits;
                    if lits[0] == false_lit {
                        lits.swap(0, 1);
                    }
                }
                let first = self.clauses[cidx].lits[0];
                if first != w.blocker && self.is_true(first) {
                    watches[i].blocker = first;
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let len = self.clauses[cidx].lits.len();
                for k in 2..len {
                    let cand = self.clauses[cidx].lits[k];
                    if !self.is_false(cand) {
                        self.clauses[cidx].lits.swap(1, k);
                        self.watches[(!cand).code()].push(Watch {
                            clause: w.clause,
                            blocker: first,
                        });
                        watches.swap(i, keep - 1);
                        keep -= 1;
                        continue 'watches;
                    }
                }
                // No new watch: unit or conflict on lits[0].
                if self.is_false(first) {
                    conflict = Some(Conflict::Clause(w.clause));
                    break;
                }
                self.enqueue(first, Reason::Clause(w.clause));
                i += 1;
            }
            watches.truncate(keep);
            debug_assert!(self.watches[p.code()].is_empty());
            self.watches[p.code()] = watches;
            if conflict.is_some() {
                return conflict;
            }

            // Linear propagation: counters were updated at enqueue time;
            // here we only check for conflicts and force literals.
            let occs = std::mem::take(&mut self.lin_occ[p.code()]);
            let mut conflict = None;
            for &(lin, _term) in &occs {
                let l = &self.linears[lin as usize];
                if l.sum_true > l.bound {
                    conflict = Some(Conflict::Linear(lin));
                    break;
                }
                let slack = l.bound - l.sum_true;
                if l.max_coeff > slack {
                    if let Some(c) = self.propagate_linear_scan(lin) {
                        conflict = Some(c);
                        break;
                    }
                }
            }
            self.lin_occ[p.code()] = occs;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    /// Forces to false every unassigned literal whose coefficient exceeds
    /// the constraint's remaining slack.
    fn propagate_linear_scan(&mut self, lin: u32) -> Option<Conflict> {
        let l = &self.linears[lin as usize];
        if l.sum_true > l.bound {
            return Some(Conflict::Linear(lin));
        }
        let slack = l.bound - l.sum_true;
        let mut forced: Vec<Lit> = Vec::new();
        for &(a, lit) in &l.terms {
            if a > slack && self.is_unassigned(lit) {
                forced.push(!lit);
            }
        }
        for f in forced {
            if self.is_false(f) {
                return Some(Conflict::Linear(lin));
            }
            if self.is_unassigned(f) {
                self.enqueue(f, Reason::Linear(lin));
            }
        }
        None
    }

    /// Antecedent literals (all currently false) that imply `implied`
    /// under the given reason; `implied = None` explains a conflict.
    fn explain(&self, conflict: Conflict, implied: Option<Lit>) -> Vec<Lit> {
        match conflict {
            Conflict::Clause(c) => self.clauses[c as usize]
                .lits
                .iter()
                .copied()
                .filter(|&l| Some(l) != implied)
                .collect(),
            Conflict::Linear(lin) => {
                let l = &self.linears[lin as usize];
                // Needed weight: enough true literals to exceed the bound
                // (conflict) or the bound minus the implied literal's
                // coefficient (propagation).
                let mut needed: u128 = u128::from(l.bound) + 1;
                let limit_pos = implied.map(|il| self.trail_pos[il.var().index()]);
                if let Some(il) = implied {
                    let a = l
                        .terms
                        .iter()
                        .find(|&&(_, t)| t == !il)
                        .map(|&(a, _)| a)
                        .expect("implied literal negates a term of the constraint");
                    needed = needed.saturating_sub(u128::from(a));
                }
                let mut trues: Vec<(u64, Lit)> = l
                    .terms
                    .iter()
                    .copied()
                    .filter(|&(_, t)| {
                        self.is_true(t)
                            && limit_pos
                                .map(|p| self.trail_pos[t.var().index()] < p)
                                .unwrap_or(true)
                    })
                    .collect();
                // Prefer large coefficients for a short explanation.
                trues.sort_by_key(|t| std::cmp::Reverse(t.0));
                let mut acc: u128 = 0;
                let mut out = Vec::new();
                for (a, t) in trues {
                    if acc >= needed {
                        break;
                    }
                    acc += u128::from(a);
                    out.push(!t);
                }
                debug_assert!(acc >= needed, "explanation must justify propagation");
                out
            }
        }
    }

    fn reason_conflict(&self, v: usize) -> Option<Conflict> {
        match self.reason[v] {
            Reason::None => None,
            Reason::Clause(c) => Some(Conflict::Clause(c)),
            Reason::Linear(l) => Some(Conflict::Linear(l)),
        }
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, conflict: Conflict) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // slot for asserting literal
        let mut path = 0usize;
        let mut idx = self.trail.len();
        let mut antecedent = self.explain(conflict, None);
        if let Conflict::Clause(c) = conflict {
            self.bump_clause(c);
        }
        let current = self.decision_level();
        let mut rescale = false;
        loop {
            for &q in &antecedent {
                let v = q.var().index();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    if self.features.vsids {
                        rescale |= self.order.bump(q.var().0, self.var_inc);
                    }
                    if self.level[v] == current {
                        path += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Walk the trail backwards to the next marked literal.
            loop {
                idx -= 1;
                if self.seen[self.trail[idx].var().index()] {
                    break;
                }
            }
            let p = self.trail[idx];
            self.seen[p.var().index()] = false;
            path -= 1;
            if path == 0 {
                learnt[0] = !p;
                break;
            }
            let r = self
                .reason_conflict(p.var().index())
                .expect("non-decision literal has a reason");
            if let Conflict::Clause(c) = r {
                self.bump_clause(c);
            }
            antecedent = self.explain(r, Some(p));
        }
        if !self.features.minimization {
            for &l in &learnt[1..] {
                self.seen[l.var().index()] = false;
            }
            return self.finish_analysis(learnt, rescale);
        }
        // Conflict-clause minimisation: a literal is redundant if its
        // reason's antecedents are all already in the clause (or at level
        // 0). One non-recursive pass catches most redundancies.
        for &l in &learnt[1..] {
            self.seen[l.var().index()] = true;
        }
        let mut minimized = vec![learnt[0]];
        for &l in &learnt[1..] {
            let keep = match self.reason_conflict(l.var().index()) {
                None => true,
                Some(r) => {
                    let ante = self.explain(r, Some(!l));
                    !ante
                        .iter()
                        .all(|a| self.seen[a.var().index()] || self.level[a.var().index()] == 0)
                }
            };
            if keep {
                minimized.push(l);
            } else {
                self.seen[l.var().index()] = false;
            }
        }
        for &l in &minimized[1..] {
            self.seen[l.var().index()] = false;
        }
        self.finish_analysis(minimized, rescale)
    }

    fn finish_analysis(&mut self, mut learnt: Vec<Lit>, rescale: bool) -> (Vec<Lit>, u32) {
        if rescale {
            self.order.rescale();
            self.var_inc *= 1e-100;
        }
        self.var_inc /= self.var_decay;

        // Backjump level: highest level among learnt[1..].
        let mut bt = 0;
        if learnt.len() > 1 {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            bt = self.level[learnt[1].var().index()];
        }
        (learnt, bt)
    }

    fn bump_clause(&mut self, c: u32) {
        let cl = &mut self.clauses[c as usize];
        if !cl.learnt {
            return;
        }
        cl.activity += self.cla_inc;
        if cl.activity > 1e20 {
            for cl in &mut self.clauses {
                cl.activity *= 1e-20;
            }
            self.cla_inc *= 1e-20;
        }
        self.cla_inc /= 0.999;
    }

    fn cancel_until(&mut self, target: u32) {
        if self.decision_level() <= target {
            return;
        }
        let lim = self.trail_lim[target as usize];
        for i in (lim..self.trail.len()).rev() {
            let p = self.trail[i];
            let v = p.var().index();
            if self.features.phase_saving {
                self.phase[v] = self.assign[v] == 1;
            }
            self.assign[v] = UNASSIGNED;
            self.reason[v] = Reason::None;
            self.order.insert(p.var().0);
            for &(lin, term) in &self.lin_occ[p.code()] {
                let l = &mut self.linears[lin as usize];
                l.sum_true -= l.terms[term as usize].0;
            }
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(target as usize);
        self.qhead = self.trail.len();
    }

    fn decide(&mut self) -> bool {
        if self.features.random_tiebreak && self.next_rand().is_multiple_of(64) {
            // Diversification: probe a few random heap slots for an
            // unassigned variable and branch on it instead of the
            // activity maximum.
            for _ in 0..4 {
                if self.order.len() == 0 {
                    break;
                }
                let i = (self.next_rand() % self.order.len() as u64) as usize;
                let v = self.order.peek_at(i);
                if self.assign[v as usize] == UNASSIGNED {
                    self.order.remove_at(i);
                    self.make_decision(v);
                    return true;
                }
            }
        }
        while let Some(v) = self.order.pop_max() {
            if self.assign[v as usize] == UNASSIGNED {
                self.make_decision(v);
                return true;
            }
        }
        false
    }

    fn make_decision(&mut self, v: u32) {
        self.trail_lim.push(self.trail.len());
        let var = Var(v);
        let lit = if self.phase[v as usize] {
            Lit::positive(var)
        } else {
            Lit::negative(var)
        };
        self.enqueue(lit, Reason::None);
        self.stats.decisions += 1;
    }

    /// Literal-block distance: the number of distinct decision levels
    /// among the clause's literals. Computed with a stamp array so the
    /// cost is one pass, no allocation.
    fn compute_lbd(&mut self, lits: &[Lit]) -> u32 {
        self.lbd_counter += 1;
        let stamp = self.lbd_counter;
        let mut lbd = 0u32;
        for &l in lits {
            let lev = self.level[l.var().index()] as usize;
            if self.lbd_stamp[lev] != stamp {
                self.lbd_stamp[lev] = stamp;
                lbd += 1;
            }
        }
        lbd
    }

    /// LBD-tiered database reduction. Glue clauses (`lbd <= glue_lbd`,
    /// the core tier) are never deleted; of the remaining learnt clauses
    /// the worst half is dropped, ranked by LBD (higher first) then
    /// activity (lower first) — so local-tier clauses go before mid-tier
    /// ones of equal activity.
    fn reduce_db(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        let glue = self.features.glue_lbd;
        let mid = self.features.mid_lbd.max(glue);
        let mut kept_core = 0u64;
        let mut candidates: Vec<u32> = Vec::new();
        for (i, c) in self.clauses.iter().enumerate() {
            if !c.learnt || c.deleted {
                continue;
            }
            if c.lbd <= glue {
                kept_core += 1;
            } else {
                candidates.push(i as u32);
            }
        }
        if candidates.len() < 2 {
            return;
        }
        candidates.sort_by(|&a, &b| {
            let (ca, cb) = (&self.clauses[a as usize], &self.clauses[b as usize]);
            cb.lbd.cmp(&ca.lbd).then(
                ca.activity
                    .partial_cmp(&cb.activity)
                    .expect("activities are finite"),
            )
        });
        let doomed = candidates.len() / 2;
        let mut deleted = 0usize;
        let (mut deleted_mid, mut deleted_local) = (0u64, 0u64);
        for &i in &candidates[..doomed] {
            let c = &mut self.clauses[i as usize];
            if c.lbd <= mid {
                deleted_mid += 1;
            } else {
                deleted_local += 1;
            }
            c.deleted = true;
            let lits = std::mem::take(&mut c.lits);
            self.learnt_bytes = self.learnt_bytes.saturating_sub(clause_bytes(lits.len()));
            if let Some(p) = self.proof.as_mut() {
                p.delete(&lits);
            }
            deleted += 1;
        }
        let (mut kept_mid, mut kept_local) = (0u64, 0u64);
        for &i in &candidates[doomed..] {
            if self.clauses[i as usize].lbd <= mid {
                kept_mid += 1;
            } else {
                kept_local += 1;
            }
        }
        self.n_learnt -= deleted;
        self.stats.deleted_clauses += deleted as u64;
        self.stats.deleted_mid += deleted_mid;
        self.stats.deleted_local += deleted_local;
        self.stats.kept_core = kept_core;
        self.stats.kept_mid = kept_mid;
        self.stats.kept_local = kept_local;
        // Rebuild watches from scratch (we are at level 0; re-propagation
        // is unnecessary because the assignment did not change).
        for w in &mut self.watches {
            w.clear();
        }
        for (idx, c) in self.clauses.iter().enumerate() {
            if c.deleted {
                continue;
            }
            let (w0, w1) = (c.lits[0], c.lits[1]);
            self.watches[(!w0).code()].push(Watch {
                clause: idx as u32,
                blocker: w1,
            });
            self.watches[(!w1).code()].push(Watch {
                clause: idx as u32,
                blocker: w0,
            });
        }
    }

    /// Polls the wall-clock deadline and the cooperative interrupt flag.
    /// Called every [`POLL_INTERVAL`] propagations + conflicts.
    fn budget_exhausted(&self, budget: &Budget) -> bool {
        if let Some(flag) = &self.interrupt {
            if flag.load(Ordering::Relaxed) {
                return true;
            }
        }
        if let Some(deadline) = budget.deadline {
            if Instant::now() >= deadline {
                return true;
            }
        }
        false
    }

    /// Publishes a freshly learnt clause (or unit) to the portfolio
    /// exchange if it qualifies: LBD at most `share_lbd` (units always
    /// qualify), length at most `share_len`, and no variable at or above
    /// the share limit (activation variables stay local).
    fn publish_learnt(&mut self, lits: &[Lit], lbd: u32) {
        let Some(ex) = &self.exchange else {
            return;
        };
        let f = &self.features;
        if lits.len() > 1 && (lbd > f.share_lbd || lits.len() > f.share_len) {
            return;
        }
        if lits.iter().any(|l| l.var().index() >= self.share_var_limit) {
            return;
        }
        if ex.publish(self.worker_id, lits, lbd, self.bound_tag) {
            self.stats.exported_clauses += 1;
        }
    }

    /// Imports clauses learnt by other portfolio workers. Must be called
    /// at decision level 0. Returns `false` on derived conflict.
    fn import_shared(&mut self) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        let Some(ex) = self.exchange.clone() else {
            return true;
        };
        let my_bound = self.bound_tag;
        let my_id = self.worker_id;
        let mut cursor = self.exchange_cursor;
        let mut ok = true;
        let mut incoming: Vec<(Vec<Lit>, u32)> = Vec::new();
        ex.import_since(&mut cursor, my_bound, my_id, |lits, lbd| {
            incoming.push((lits.to_vec(), lbd));
        });
        self.exchange_cursor = cursor;
        'clauses: for (lits, lbd) in incoming {
            if !ok {
                break;
            }
            // Simplify against the level-0 assignment.
            let mut kept = Vec::with_capacity(lits.len());
            for l in lits {
                if self.is_true(l) {
                    continue 'clauses; // already satisfied forever
                }
                if !self.is_false(l) {
                    kept.push(l);
                }
            }
            self.stats.imported_clauses += 1;
            // Imported clauses join the database, so a certifying replay
            // must re-derive them like any learnt clause.
            if let Some(p) = self.proof.as_mut() {
                p.add(&kept, ProofOrigin::Imported);
            }
            match kept.len() {
                0 => ok = false,
                1 => self.enqueue(kept[0], Reason::None),
                _ => {
                    let lbd = lbd.min(kept.len() as u32);
                    self.attach_clause(kept, true, lbd);
                }
            }
        }
        if ok && self.propagate().is_some() {
            ok = false;
        }
        if !ok {
            self.ok = false;
        }
        ok
    }

    /// The subset of the most recent `solve_under_assumptions` call's
    /// assumptions that the refutation depends on. Empty when the last
    /// result was not an assumption failure — in particular, empty when
    /// the constraint database is unsatisfiable on its own.
    pub fn unsat_core(&self) -> &[Lit] {
        &self.last_core
    }

    /// Computes the assumption subset responsible for `p` (an assumption
    /// literal currently falsified) being false: walks the trail above
    /// level 0 resolving reasons; decisions reached are assumptions.
    fn analyze_final(&mut self, p: Lit) {
        self.last_core.clear();
        self.last_core.push(p);
        if self.decision_level() == 0 {
            return;
        }
        self.seen[p.var().index()] = true;
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let q = self.trail[i];
            let v = q.var().index();
            if !self.seen[v] {
                continue;
            }
            match self.reason_conflict(v) {
                // Above level 0 every reason-free trail literal is an
                // enqueued assumption (real decisions cannot precede full
                // assumption establishment).
                None => self.last_core.push(q),
                Some(r) => {
                    for a in self.explain(r, Some(q)) {
                        if self.level[a.var().index()] > 0 {
                            self.seen[a.var().index()] = true;
                        }
                    }
                }
            }
            self.seen[v] = false;
        }
        self.seen[p.var().index()] = false;
    }

    /// Runs CDCL search under the given budget.
    pub fn solve(&mut self, budget: Budget) -> SatResult {
        self.solve_under_assumptions(budget, &[])
    }

    /// Runs CDCL search with every literal in `assumptions` held true.
    ///
    /// Assumptions are enqueued as pseudo-decisions (one per decision
    /// level, MiniSat style) and vanish when the search ends — nothing is
    /// added to the constraint database, so the engine stays reusable with
    /// a different assumption set and every clause learnt under one set
    /// remains valid under any other. On [`SatResult::Unsat`] caused by
    /// the assumptions, [`Engine::unsat_core`] names the responsible
    /// subset and [`Engine::is_ok`] stays `true`; an Unsat with `is_ok()
    /// == false` means the database itself is unsatisfiable (the core is
    /// empty then).
    pub fn solve_under_assumptions(&mut self, budget: Budget, assumptions: &[Lit]) -> SatResult {
        self.last_core.clear();
        if !self.ok {
            return SatResult::Unsat;
        }
        self.cancel_until(0);
        if self.propagate().is_some() {
            self.ok = false;
            return SatResult::Unsat;
        }
        if !self.import_shared() {
            return SatResult::Unsat;
        }
        self.assumptions = assumptions.to_vec();
        let result = self.search(budget);
        self.assumptions = Vec::new();
        // Leave no assumption levels behind: the next `add_norm` or solve
        // would cancel anyway, but callers read models off the trail only
        // after Sat, and Sat keeps the full trail intact deliberately.
        if result != SatResult::Sat {
            self.cancel_until(0);
        }
        result
    }

    /// The CDCL main loop (assumptions, if any, are in `self.assumptions`).
    fn search(&mut self, budget: Budget) -> SatResult {
        let restart_base = self.features.restart_base.max(1);
        let mut restart_idx = 0u64;
        let mut conflicts_until_restart = luby(restart_idx) * restart_base;
        let start_conflicts = self.stats.conflicts;
        // Deadline / interrupt polling is amortised over a counter of
        // propagations + conflicts so the hot loop never calls
        // `Instant::now()` more than once per POLL_INTERVAL events.
        let mut next_poll = self.stats.propagations + self.stats.conflicts + POLL_INTERVAL;

        loop {
            let polled_ops = self.stats.propagations + self.stats.conflicts;
            if polled_ops >= next_poll {
                next_poll = polled_ops + POLL_INTERVAL;
                if self.budget_exhausted(&budget) {
                    return SatResult::Unknown;
                }
                if self.over_mem_limit() {
                    // Memory watchdog: shed learnt clauses before giving
                    // up, then exit cleanly rather than grow unbounded.
                    self.cancel_until(0);
                    if self.n_learnt > 16 {
                        self.reduce_db();
                    }
                    if self.over_mem_limit() {
                        return SatResult::Unknown;
                    }
                    continue;
                }
            }
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SatResult::Unsat;
                }
                let (learnt, bt) = self.analyze(confl);
                let lbd = self.compute_lbd(&learnt);
                self.stats.learnt_clauses += 1;
                self.stats.lbd_total += u64::from(lbd);
                if let Some(p) = self.proof.as_mut() {
                    p.add(&learnt, ProofOrigin::Learnt);
                }
                self.cancel_until(bt);
                self.publish_learnt(&learnt, lbd);
                if learnt.len() == 1 {
                    self.enqueue(learnt[0], Reason::None);
                } else {
                    let asserting = learnt[0];
                    let cidx = self.attach_clause(learnt, true, lbd);
                    self.enqueue(asserting, Reason::Clause(cidx));
                }
                conflicts_until_restart = conflicts_until_restart.saturating_sub(1);
                if let Some(limit) = budget.conflict_limit {
                    if self.stats.conflicts - start_conflicts >= limit {
                        return SatResult::Unknown;
                    }
                }
            } else {
                if conflicts_until_restart == 0 && self.features.restarts {
                    restart_idx += 1;
                    conflicts_until_restart = luby(restart_idx) * restart_base;
                    self.stats.restarts += 1;
                    self.cancel_until(0);
                    if !self.import_shared() {
                        return SatResult::Unsat;
                    }
                    if self.n_learnt > self.learnt_cap {
                        self.reduce_db();
                        self.learnt_cap += self.learnt_cap / 2;
                    }
                    continue;
                }
                // Establish pending assumptions before any real decision:
                // one per level, so the trail structure records exactly
                // which assumptions are in force.
                if (self.decision_level() as usize) < self.assumptions.len() {
                    let a = self.assumptions[self.decision_level() as usize];
                    if self.is_true(a) {
                        // Already implied: dedicate a dummy level to it so
                        // the level↔assumption correspondence holds.
                        self.trail_lim.push(self.trail.len());
                    } else if self.is_false(a) {
                        self.analyze_final(a);
                        return SatResult::Unsat;
                    } else {
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(a, Reason::None);
                        self.stats.decisions += 1;
                    }
                    continue;
                }
                if !self.decide() {
                    return SatResult::Sat;
                }
            }
        }
    }
}

/// The Luby restart sequence (1, 1, 2, 1, 1, 2, 4, ...), 0-indexed.
fn luby(i: u64) -> u64 {
    // Standard closed-form recursion on the 1-indexed sequence: if
    // n = 2^k - 1 the value is 2^(k-1); otherwise recurse on the tail.
    let mut n = i + 1;
    loop {
        let k = 64 - n.leading_zeros() as u64; // floor(log2(n)) + 1
        if n == (1u64 << k) - 1 {
            return 1u64 << (k - 1);
        }
        n -= (1u64 << (k - 1)) - 1;
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // column-index loops in incidence constructions
mod tests {
    use super::*;
    use crate::model::Model;
    use crate::normalize::normalize;

    fn engine_from(m: &Model) -> Engine {
        let mut e = Engine::new(m.num_vars());
        for c in m.constraints() {
            for nc in normalize(c) {
                e.add_norm(nc);
            }
        }
        e
    }

    #[test]
    fn luby_sequence() {
        let expect = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (0..expect.len() as u64).map(luby).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn trivial_sat() {
        let mut m = Model::new();
        let x = m.new_var();
        m.add_clause([x.lit()]);
        let mut e = engine_from(&m);
        assert_eq!(e.solve(Budget::unlimited()), SatResult::Sat);
        assert!(e.model_value(x));
    }

    #[test]
    fn trivial_unsat() {
        let mut m = Model::new();
        let x = m.new_var();
        m.add_clause([x.lit()]);
        m.add_clause([!x.lit()]);
        let mut e = engine_from(&m);
        assert_eq!(e.solve(Budget::unlimited()), SatResult::Unsat);
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // 3 pigeons, 2 holes: each pigeon in >=1 hole, each hole <=1 pigeon.
        let mut m = Model::new();
        let p: Vec<Vec<_>> = (0..3).map(|_| m.new_vars(2)).collect();
        for row in &p {
            m.add_clause(row.iter().map(|v| v.lit()));
        }
        for h in 0..2 {
            m.add_at_most_one((0..3).map(|i| p[i][h]));
        }
        let mut e = engine_from(&m);
        assert_eq!(e.solve(Budget::unlimited()), SatResult::Unsat);
    }

    #[test]
    fn exactly_one_chain_sat() {
        let mut m = Model::new();
        let cells: Vec<Vec<_>> = (0..4).map(|_| m.new_vars(4)).collect();
        for row in &cells {
            m.add_exactly_one(row.iter().copied());
        }
        for c in 0..4 {
            m.add_at_most_one((0..4).map(|r| cells[r][c]));
        }
        let mut e = engine_from(&m);
        assert_eq!(e.solve(Budget::unlimited()), SatResult::Sat);
        // Verify it is a permutation matrix.
        for row in &cells {
            assert_eq!(row.iter().filter(|v| e.model_value(**v)).count(), 1);
        }
        for c in 0..4 {
            assert!((0..4).filter(|&r| e.model_value(cells[r][c])).count() <= 1);
        }
    }

    #[test]
    fn weighted_pb_propagation() {
        // 3a + 2b + 2c <= 4 with a forced true leaves slack 1: b, c forced false.
        let mut m = Model::new();
        let a = m.new_var();
        let b = m.new_var();
        let c = m.new_var();
        let mut e = LinExprHelper::expr(&[(3, a), (2, b), (2, c)]);
        m.add_le(std::mem::take(&mut e), 4);
        m.add_clause([a.lit()]);
        let mut eng = engine_from(&m);
        assert_eq!(eng.solve(Budget::unlimited()), SatResult::Sat);
        assert!(eng.model_value(a));
        assert!(!eng.model_value(b));
        assert!(!eng.model_value(c));
    }

    struct LinExprHelper;

    impl LinExprHelper {
        fn expr(terms: &[(i64, Var)]) -> crate::model::LinExpr {
            let mut e = crate::model::LinExpr::new();
            for &(c, v) in terms {
                e.add_term(c, v);
            }
            e
        }
    }

    #[test]
    fn conflict_limit_returns_unknown() {
        // A hard pigeonhole instance with a conflict budget of 1.
        let n = 8;
        let mut m = Model::new();
        let p: Vec<Vec<_>> = (0..n + 1).map(|_| m.new_vars(n)).collect();
        for row in &p {
            m.add_clause(row.iter().map(|v| v.lit()));
        }
        for h in 0..n {
            m.add_at_most_one((0..n + 1).map(|i| p[i][h]));
        }
        let mut e = engine_from(&m);
        let r = e.solve(Budget {
            deadline: None,
            conflict_limit: Some(1),
        });
        assert_eq!(r, SatResult::Unknown);
    }

    #[test]
    fn incremental_add_between_solves() {
        let mut m = Model::new();
        let vs = m.new_vars(3);
        m.add_ge(crate::model::LinExpr::sum(vs.clone()), 1);
        let mut e = engine_from(&m);
        assert_eq!(e.solve(Budget::unlimited()), SatResult::Sat);
        // Now force all false: unsat.
        e.cancel_until(0);
        for v in &vs {
            if !e.add_norm(NormConstraint::Unit(!v.lit())) {
                break;
            }
        }
        assert_eq!(e.solve(Budget::unlimited()), SatResult::Unsat);
    }
}
