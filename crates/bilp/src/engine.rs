//! The CDCL search engine with native pseudo-Boolean propagation.
//!
//! This is a conflict-driven clause-learning SAT core in the MiniSat
//! lineage (two-watched-literal clause propagation with blocking
//! literals, 1UIP learning, VSIDS decision ordering with phase saving,
//! Luby restarts, learnt-clause database reduction) extended with a
//! counting propagator for pseudo-Boolean *at-most* constraints. PB
//! propagations and conflicts are explained with clauses, which keeps
//! CDCL learning sound without cutting-planes reasoning.
//!
//! # Memory layout
//!
//! The hot data structures are laid out for cache locality rather than
//! pointer convenience:
//!
//! * **Arena clause store** ([`ClauseArena`]): every clause lives in one
//!   flat `u32` buffer — a three-word header (length + flags, LBD + age,
//!   activity) followed by the literal codes — addressed by a 32-bit
//!   [`CRef`]. There is no per-clause heap allocation, and a watch visit
//!   that must touch clause memory reads one contiguous cache line run.
//! * **Bit-packed assignments**: variable values are 2-bit codes packed
//!   into `u64` words ([`PackedVals`]); saved phases and the conflict
//!   analysis `seen` marks are 1-bit arrays ([`BitVec`]). The whole
//!   assignment of a 100k-variable model fits in L2.
//! * **Compacting GC** ([`Engine::garbage_collect`]): learnt-DB
//!   reduction rebuilds the arena *in watch order* — clauses are copied
//!   to a fresh buffer in the order the propagator visits them, so the
//!   most-traversed clauses end up adjacent. Forwarding references in
//!   the old headers keep the watch lists consistent mid-move. GC runs
//!   only at decision level 0, where no clause is a reason (level-0
//!   enqueues drop their reasons), so no reason pointers need fixing.
//!
//! # Inprocessing
//!
//! Between restarts the engine periodically simplifies its own database
//! ([`Engine::inprocess`]): root-level satisfied clauses are dropped and
//! root-falsified literals stripped, bounded learnt-clause
//! **vivification** shortens clauses by propagating their negated
//! prefixes, and a bounded **subsumption / self-subsuming resolution**
//! pass removes or strengthens learnt clauses against each other. Every
//! rewrite is proof-logged (add the strengthened clause, then delete the
//! original — RUP-valid because the original is still present), so
//! certified UNSAT verdicts survive inprocessing unchanged.
//!
//! The engine supports adding constraints between successive `solve` calls
//! (always at decision level 0) and, more importantly, **solving under
//! assumptions** ([`Engine::solve_under_assumptions`]): a set of literals
//! is held true for one search without ever becoming permanent, so the
//! branch-and-bound loop in [`crate::solve`] probes objective bounds
//! through activation literals on one persistent engine — every learnt
//! clause stays valid across the whole descent. When an assumption set is
//! refuted, [`Engine::unsat_core`] returns the subset of assumptions the
//! final conflict depends on.
//!
//! Learnt-clause management is LBD-based (Audemard & Simon's "glue"
//! metric) with an age-based demotion rule: each learnt clause records
//! its LBD and the number of consecutive reductions it survived without
//! being used in conflict analysis. Reduction protects glue clauses
//! (`lbd <= glue_lbd`) unconditionally, ranks the rest by age-penalised
//! LBD then activity, deletes the worst half, and additionally evicts
//! any clause — mid tier included — that has gone unused for
//! [`MAX_CLAUSE_AGE`] consecutive reductions.

use crate::model::{Lit, Var};
use crate::normalize::NormConstraint;
use crate::portfolio::ClauseExchange;
use crate::proof::{ProofLog, ProofOrigin};
use std::sync::atomic::{AtomicBool, AtomicI64, Ordering};
use std::sync::Arc;
use std::time::Instant;

const UNASSIGNED: i8 = 2;

/// How many propagations + conflicts may pass between two wall-clock /
/// interrupt polls. Checking `Instant::now()` on every propagation would
/// dominate the hot loop; checking only on conflicts makes deadlines
/// unresponsive on propagation-heavy instances. 1024 combined events
/// keeps the overhead unmeasurable while bounding the poll latency to a
/// few microseconds of solver work.
const POLL_INTERVAL: u64 = 1024;

/// A learnt clause that survives this many consecutive reductions
/// without being bumped by conflict analysis is evicted regardless of
/// its tier rank — the demotion rule that keeps the mid tier from
/// growing monotonically.
const MAX_CLAUSE_AGE: u32 = 4;

/// Vivification runs on every `VIVIFY_CADENCE`-th inprocessing pass
/// (subsumption and root simplification run on every pass), and only
/// once the search has accumulated [`VIVIFY_ONSET`] conflicts — probing
/// rewrites perturb the descent trajectory enough that they only pay
/// off on searches long enough to amortise the disruption.
const VIVIFY_CADENCE: u64 = 4;

/// Conflicts before the first vivification round may run.
const VIVIFY_ONSET: u64 = 100_000;

/// Reference to a clause in the arena: the word offset of its header.
type CRef = u32;

/// Sentinel "no clause" reference (also used for the vivification guard).
const CREF_NONE: CRef = u32::MAX;

/// Words of clause header preceding the literals in the arena.
const HEADER_WORDS: u32 = 4;

// Header word 0 layout: bits 0..=28 length, bit 29 relocated (GC
// forwarding marker), bit 30 learnt, bit 31 deleted.
const LEN_MASK: u32 = (1 << 29) - 1;
const FLAG_RELOCATED: u32 = 1 << 29;
const FLAG_LEARNT: u32 = 1 << 30;
const FLAG_DELETED: u32 = 1 << 31;

/// Approximate byte footprint of an arena clause holding `n` literals.
fn clause_bytes(n: usize) -> usize {
    4 * (HEADER_WORDS as usize + n)
}

/// Flat clause storage: all clauses in one `u32` buffer.
///
/// Layout per clause at offset `r`:
///
/// | word    | contents                                   |
/// |---------|--------------------------------------------|
/// | `r`     | length, relocated / learnt / deleted flags |
/// | `r + 1` | LBD (low 16 bits) and age (high 16 bits)   |
/// | `r + 2` | activity (`f64` bits, low word)            |
/// | `r + 3` | activity (`f64` bits, high word)           |
/// | `r + 4…`| literal codes                              |
///
/// During garbage collection word `r + 1` of a relocated clause is
/// repurposed as the forwarding reference into the new arena.
#[derive(Debug, Default)]
struct ClauseArena {
    data: Vec<u32>,
    /// Words occupied by deleted clauses (headers included); reclaimed
    /// by [`Engine::garbage_collect`].
    wasted: usize,
}

impl ClauseArena {
    fn with_capacity(words: usize) -> Self {
        ClauseArena {
            data: Vec::with_capacity(words),
            wasted: 0,
        }
    }

    /// Appends a clause and returns its reference.
    fn alloc(&mut self, lits: &[Lit], learnt: bool, lbd: u32) -> CRef {
        debug_assert!(lits.len() >= 2);
        debug_assert!(lits.len() as u32 <= LEN_MASK);
        let r = self.data.len() as u32;
        debug_assert!(
            (self.data.len() + HEADER_WORDS as usize + lits.len()) < u32::MAX as usize,
            "arena exceeds 32-bit addressing"
        );
        let mut header = lits.len() as u32;
        if learnt {
            header |= FLAG_LEARNT;
        }
        self.data.push(header);
        self.data.push(lbd.min(u16::MAX as u32)); // age starts at 0
        self.data.push(0); // activity low word
        self.data.push(0); // activity high word
        self.data.extend(lits.iter().map(|l| l.code() as u32));
        r
    }

    #[inline]
    fn len(&self, r: CRef) -> usize {
        (self.data[r as usize] & LEN_MASK) as usize
    }

    #[inline]
    fn is_learnt(&self, r: CRef) -> bool {
        self.data[r as usize] & FLAG_LEARNT != 0
    }

    #[inline]
    fn is_deleted(&self, r: CRef) -> bool {
        self.data[r as usize] & FLAG_DELETED != 0
    }

    fn mark_deleted(&mut self, r: CRef) {
        debug_assert!(!self.is_deleted(r));
        self.data[r as usize] |= FLAG_DELETED;
        self.wasted += HEADER_WORDS as usize + self.len(r);
    }

    #[inline]
    fn lbd(&self, r: CRef) -> u32 {
        self.data[r as usize + 1] & 0xffff
    }

    #[inline]
    fn age(&self, r: CRef) -> u32 {
        self.data[r as usize + 1] >> 16
    }

    fn set_age(&mut self, r: CRef, age: u32) {
        let w = &mut self.data[r as usize + 1];
        *w = (*w & 0xffff) | (age.min(u16::MAX as u32) << 16);
    }

    #[inline]
    fn activity(&self, r: CRef) -> f64 {
        let lo = u64::from(self.data[r as usize + 2]);
        let hi = u64::from(self.data[r as usize + 3]);
        f64::from_bits(lo | (hi << 32))
    }

    fn set_activity(&mut self, r: CRef, a: f64) {
        let bits = a.to_bits();
        self.data[r as usize + 2] = bits as u32;
        self.data[r as usize + 3] = (bits >> 32) as u32;
    }

    #[inline]
    fn lit(&self, r: CRef, i: usize) -> Lit {
        Lit(self.data[r as usize + HEADER_WORDS as usize + i])
    }

    #[inline]
    fn swap_lits(&mut self, r: CRef, i: usize, j: usize) {
        let base = r as usize + HEADER_WORDS as usize;
        self.data.swap(base + i, base + j);
    }

    fn collect_lits(&self, r: CRef) -> Vec<Lit> {
        let base = r as usize + HEADER_WORDS as usize;
        self.data[base..base + self.len(r)]
            .iter()
            .map(|&c| Lit(c))
            .collect()
    }

    /// All clause references, in arena order (deleted ones included).
    fn crefs(&self) -> Vec<CRef> {
        let mut out = Vec::new();
        let mut r = 0u32;
        while (r as usize) < self.data.len() {
            out.push(r);
            r += HEADER_WORDS + self.len(r) as u32;
        }
        out
    }

    /// Multiplies every learnt clause's activity by `factor`.
    fn rescale_activities(&mut self, factor: f64) {
        let mut r = 0u32;
        while (r as usize) < self.data.len() {
            if self.data[r as usize] & FLAG_LEARNT != 0 {
                let a = self.activity(r) * factor;
                self.set_activity(r, a);
            }
            r += HEADER_WORDS + self.len(r) as u32;
        }
    }

    #[inline]
    fn is_relocated(&self, r: CRef) -> bool {
        self.data[r as usize] & FLAG_RELOCATED != 0
    }

    /// Copies the clause into `to` (once — later calls return the
    /// forwarding reference left in the old header).
    fn reloc(&mut self, r: CRef, to: &mut ClauseArena) -> CRef {
        if self.is_relocated(r) {
            return self.data[r as usize + 1];
        }
        debug_assert!(!self.is_deleted(r));
        let total = HEADER_WORDS as usize + self.len(r);
        let new_r = to.data.len() as u32;
        to.data
            .extend_from_slice(&self.data[r as usize..r as usize + total]);
        self.data[r as usize] |= FLAG_RELOCATED;
        self.data[r as usize + 1] = new_r;
        new_r
    }
}

/// 2-bit variable values (0 = false, 1 = true, 2 = unassigned) packed
/// 32 to a `u64` word.
#[derive(Debug, Default)]
struct PackedVals {
    words: Vec<u64>,
    len: usize,
}

/// A `u64` word of 32 unassigned codes (`0b10` repeated).
const UNASSIGNED_WORD: u64 = 0xAAAA_AAAA_AAAA_AAAA;

impl PackedVals {
    fn new(n: usize) -> Self {
        PackedVals {
            words: vec![UNASSIGNED_WORD; n.div_ceil(32)],
            len: n,
        }
    }

    #[inline]
    fn get(&self, v: usize) -> u8 {
        debug_assert!(v < self.len);
        ((self.words[v >> 5] >> ((v & 31) * 2)) & 3) as u8
    }

    #[inline]
    fn set(&mut self, v: usize, code: u8) {
        debug_assert!(v < self.len);
        let sh = (v & 31) * 2;
        let w = &mut self.words[v >> 5];
        *w = (*w & !(3u64 << sh)) | (u64::from(code) << sh);
    }

    fn push_unassigned(&mut self) {
        if self.len & 31 == 0 {
            self.words.push(UNASSIGNED_WORD);
        }
        self.len += 1;
        let v = self.len - 1;
        let sh = (v & 31) * 2;
        let w = &mut self.words[v >> 5];
        *w = (*w & !(3u64 << sh)) | (2u64 << sh);
    }
}

/// A plain 1-bit-per-entry array (saved phases, analysis marks).
#[derive(Debug, Default)]
struct BitVec {
    words: Vec<u64>,
    len: usize,
}

impl BitVec {
    fn new(n: usize, value: bool) -> Self {
        BitVec {
            words: vec![if value { !0 } else { 0 }; n.div_ceil(64)],
            len: n,
        }
    }

    #[inline]
    fn get(&self, i: usize) -> bool {
        debug_assert!(i < self.len);
        self.words[i >> 6] >> (i & 63) & 1 != 0
    }

    #[inline]
    fn set(&mut self, i: usize, value: bool) {
        debug_assert!(i < self.len);
        let mask = 1u64 << (i & 63);
        if value {
            self.words[i >> 6] |= mask;
        } else {
            self.words[i >> 6] &= !mask;
        }
    }

    fn fill(&mut self, value: bool) {
        let w = if value { !0 } else { 0 };
        self.words.iter_mut().for_each(|x| *x = w);
    }

    fn push(&mut self, value: bool) {
        if self.len & 63 == 0 {
            self.words.push(0);
        }
        self.len += 1;
        let i = self.len - 1;
        self.set(i, value);
    }
}

/// Feature toggles and diversification knobs for the search engine.
///
/// The boolean toggles exist for ablation studies (all default to
/// enabled). The `seed` / `random_tiebreak` / `default_phase` /
/// `restart_base` knobs diversify engines for portfolio solving
/// ([`crate::portfolio`]): each portfolio worker runs the same constraint
/// database under a different configuration, racing to the first answer.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineFeatures {
    /// VSIDS activity-driven decision ordering (off = static order).
    pub vsids: bool,
    /// Phase saving (off = always decide negative first).
    pub phase_saving: bool,
    /// Conflict-clause minimisation.
    pub minimization: bool,
    /// Luby restarts.
    pub restarts: bool,
    /// Seed for the engine's internal tie-breaking RNG.
    pub seed: u64,
    /// Occasionally (about 1 decision in 64) branch on a random variable
    /// instead of the activity-ordered one. Off by default: the baseline
    /// single-threaded engine stays fully deterministic.
    pub random_tiebreak: bool,
    /// Initial decision polarity before any phase has been saved.
    pub default_phase: bool,
    /// Base conflict interval of the Luby restart schedule (the classic
    /// MiniSat value 256 by default; portfolio workers vary it).
    pub restart_base: u64,
    /// Initial learnt-clause cap: database reduction triggers when the
    /// number of live learnt clauses exceeds it (the cap then grows
    /// geometrically). Historically hardcoded to 20 000.
    pub learnt_cap: usize,
    /// Learnt clauses with LBD at or below this are *glue* (core tier):
    /// they are never deleted by database reduction.
    pub glue_lbd: u32,
    /// Upper LBD bound of the *mid* tier; clauses above it are *local*.
    /// The tier only affects reduction bookkeeping and deletion order —
    /// local clauses are deleted before mid ones of the same age and
    /// activity, but any non-glue clause unused for [`MAX_CLAUSE_AGE`]
    /// reductions is evicted.
    pub mid_lbd: u32,
    /// Maximum LBD for a learnt clause to be exported to the portfolio
    /// clause exchange (units are always exported).
    pub share_lbd: u32,
    /// Maximum length for an exported learnt clause.
    pub share_len: usize,
    /// Inprocessing between restarts: root-level clause simplification,
    /// learnt-clause vivification and bounded subsumption /
    /// self-subsuming resolution. Off reproduces the pre-inprocessing
    /// engine search bit for bit.
    pub inprocessing: bool,
    /// Conflicts between two inprocessing passes.
    pub inprocess_interval: u64,
    /// Propagation budget of one vivification pass (0 disables
    /// vivification while keeping the other inprocessing steps).
    pub vivify_budget: u64,
}

impl Default for EngineFeatures {
    fn default() -> Self {
        EngineFeatures {
            vsids: true,
            phase_saving: true,
            minimization: true,
            restarts: true,
            seed: 0,
            random_tiebreak: false,
            default_phase: false,
            restart_base: 256,
            learnt_cap: 20_000,
            glue_lbd: 2,
            mid_lbd: 6,
            share_lbd: 2,
            share_len: 8,
            inprocessing: true,
            inprocess_interval: 4096,
            vivify_budget: 100_000,
        }
    }
}

/// Search budget for one `solve` call.
#[derive(Debug, Clone, Copy, Default)]
pub struct Budget {
    /// Wall-clock deadline.
    pub deadline: Option<Instant>,
    /// Maximum number of conflicts.
    pub conflict_limit: Option<u64>,
}

impl Budget {
    /// An unlimited budget.
    pub fn unlimited() -> Self {
        Budget::default()
    }
}

/// Result of one engine search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SatResult {
    /// A satisfying assignment was found (query it with
    /// [`Engine::model_value`]).
    Sat,
    /// The constraint set is unsatisfiable.
    Unsat,
    /// The budget was exhausted first.
    Unknown,
}

/// Cumulative search statistics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of literals propagated.
    pub propagations: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Number of learnt clauses deleted by database reduction.
    pub deleted_clauses: u64,
    /// Number of clauses learnt from conflicts (including units).
    pub learnt_clauses: u64,
    /// Sum of learnt-clause LBD values (mean = `lbd_total / learnt_clauses`).
    pub lbd_total: u64,
    /// Mid-tier clauses (`glue_lbd < lbd <= mid_lbd`) deleted by reduction.
    pub deleted_mid: u64,
    /// Local-tier clauses (`lbd > mid_lbd`) deleted by reduction.
    pub deleted_local: u64,
    /// Core-tier (glue) clauses alive at the most recent reduction.
    pub kept_core: u64,
    /// Mid-tier clauses surviving the most recent reduction.
    pub kept_mid: u64,
    /// Local-tier clauses surviving the most recent reduction.
    pub kept_local: u64,
    /// Clauses imported from the portfolio clause exchange.
    pub imported_clauses: u64,
    /// Clauses exported to the portfolio clause exchange.
    pub exported_clauses: u64,
    /// Inprocessing passes run between restarts.
    pub inprocessings: u64,
    /// Literals removed from learnt clauses by vivification.
    pub vivified_lits: u64,
    /// Learnt clauses deleted because another learnt clause subsumes them.
    pub subsumed_clauses: u64,
    /// Literals removed by self-subsuming resolution (strengthening).
    pub strengthened_lits: u64,
    /// Arena compactions performed.
    pub gc_runs: u64,
}

impl EngineStats {
    /// Mean LBD over every clause learnt so far (0 when none were).
    pub fn mean_lbd(&self) -> f64 {
        if self.learnt_clauses == 0 {
            0.0
        } else {
            self.lbd_total as f64 / self.learnt_clauses as f64
        }
    }

    /// Adds `other`'s additive counters into `self`, so the stats of a
    /// multi-solver run (e.g. a feasibility solve followed by a separate
    /// optimisation solve) can be reported as one total. The
    /// database-occupancy snapshots (`kept_core`/`kept_mid`/`kept_local`
    /// describe the *most recent* reduction, not a running sum) keep
    /// `self`'s values.
    pub fn absorb(&mut self, other: &EngineStats) {
        self.conflicts += other.conflicts;
        self.decisions += other.decisions;
        self.propagations += other.propagations;
        self.restarts += other.restarts;
        self.deleted_clauses += other.deleted_clauses;
        self.learnt_clauses += other.learnt_clauses;
        self.lbd_total += other.lbd_total;
        self.deleted_mid += other.deleted_mid;
        self.deleted_local += other.deleted_local;
        self.imported_clauses += other.imported_clauses;
        self.exported_clauses += other.exported_clauses;
        self.inprocessings += other.inprocessings;
        self.vivified_lits += other.vivified_lits;
        self.subsumed_clauses += other.subsumed_clauses;
        self.strengthened_lits += other.strengthened_lits;
        self.gc_runs += other.gc_runs;
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Reason {
    None,
    Clause(CRef),
    Linear(u32),
}

#[derive(Debug, Clone, Copy)]
struct Watch {
    cref: CRef,
    blocker: Lit,
}

#[derive(Debug)]
struct Linear {
    terms: Vec<(u64, Lit)>,
    bound: u64,
    sum_true: u64,
    max_coeff: u64,
}

#[derive(Debug, Clone, Copy)]
enum Conflict {
    Clause(CRef),
    Linear(u32),
}

/// Indexed max-heap over variable activities.
#[derive(Debug, Default)]
struct VarOrder {
    heap: Vec<u32>,
    pos: Vec<i32>,
    activity: Vec<f64>,
}

impl VarOrder {
    fn grow_to(&mut self, n: usize) {
        while self.activity.len() < n {
            let v = self.activity.len() as u32;
            self.activity.push(0.0);
            self.pos.push(-1);
            self.insert(v);
        }
    }

    fn in_heap(&self, v: u32) -> bool {
        self.pos[v as usize] >= 0
    }

    fn insert(&mut self, v: u32) {
        if self.in_heap(v) {
            return;
        }
        self.pos[v as usize] = self.heap.len() as i32;
        self.heap.push(v);
        self.sift_up(self.heap.len() - 1);
    }

    fn pop_max(&mut self) -> Option<u32> {
        if self.heap.is_empty() {
            return None;
        }
        let top = self.heap[0];
        let last = self.heap.pop().expect("non-empty");
        self.pos[top as usize] = -1;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.pos[last as usize] = 0;
            self.sift_down(0);
        }
        Some(top)
    }

    fn len(&self) -> usize {
        self.heap.len()
    }

    fn peek_at(&self, i: usize) -> u32 {
        self.heap[i]
    }

    /// Removes the element at heap position `i` (used by randomised
    /// decision tie-breaking, which picks a heap slot uniformly).
    fn remove_at(&mut self, i: usize) -> u32 {
        let v = self.heap[i];
        let last = self.heap.pop().expect("non-empty");
        self.pos[v as usize] = -1;
        if i < self.heap.len() {
            self.heap[i] = last;
            self.pos[last as usize] = i as i32;
            // The displaced element may need to move either direction.
            self.sift_up(i);
            let p = self.pos[last as usize] as usize;
            self.sift_down(p);
        }
        v
    }

    fn bump(&mut self, v: u32, inc: f64) -> bool {
        self.activity[v as usize] += inc;
        let rescale = self.activity[v as usize] > 1e100;
        if self.in_heap(v) {
            let p = self.pos[v as usize] as usize;
            self.sift_up(p);
        }
        rescale
    }

    fn rescale(&mut self) {
        for a in &mut self.activity {
            *a *= 1e-100;
        }
    }

    fn sift_up(&mut self, mut i: usize) {
        while i > 0 {
            let parent = (i - 1) / 2;
            if self.activity[self.heap[i] as usize] <= self.activity[self.heap[parent] as usize] {
                break;
            }
            self.swap(i, parent);
            i = parent;
        }
    }

    fn sift_down(&mut self, mut i: usize) {
        loop {
            let l = 2 * i + 1;
            let r = 2 * i + 2;
            let mut best = i;
            if l < self.heap.len()
                && self.activity[self.heap[l] as usize] > self.activity[self.heap[best] as usize]
            {
                best = l;
            }
            if r < self.heap.len()
                && self.activity[self.heap[r] as usize] > self.activity[self.heap[best] as usize]
            {
                best = r;
            }
            if best == i {
                break;
            }
            self.swap(i, best);
            i = best;
        }
    }

    fn swap(&mut self, i: usize, j: usize) {
        self.heap.swap(i, j);
        self.pos[self.heap[i] as usize] = i as i32;
        self.pos[self.heap[j] as usize] = j as i32;
    }
}

/// The CDCL + pseudo-Boolean search engine.
///
/// Construct with [`Engine::new`], add constraints (only at decision level
/// zero, i.e. before or between `solve` calls), then call
/// [`Engine::solve`].
#[derive(Debug)]
pub struct Engine {
    num_vars: usize,
    assign: PackedVals,
    level: Vec<u32>,
    reason: Vec<Reason>,
    trail_pos: Vec<u32>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    arena: ClauseArena,
    watches: Vec<Vec<Watch>>,
    linears: Vec<Linear>,
    lin_occ: Vec<Vec<(u32, u32)>>,
    order: VarOrder,
    phase: BitVec,
    var_inc: f64,
    var_decay: f64,
    cla_inc: f64,
    ok: bool,
    n_learnt: usize,
    learnt_cap: usize,
    stats: EngineStats,
    seen: BitVec,
    features: EngineFeatures,
    rng_state: u64,
    interrupt: Option<Arc<AtomicBool>>,
    exchange: Option<Arc<ClauseExchange>>,
    exchange_cursor: usize,
    /// When false the engine still exports learnt clauses to the
    /// exchange but never imports foreign ones — the pinned portfolio
    /// worker stays bit-identical to a sequential run this way.
    exchange_import: bool,
    /// Shared best-objective cell watched at every budget poll: when the
    /// global incumbent drops below this engine's own bound tag, the
    /// search yields `Unknown` so the caller can post the tighter
    /// permanent bound and re-enter.
    bound_watch: Option<Arc<AtomicI64>>,
    bound_tag: i64,
    worker_id: usize,
    /// Clauses mentioning a variable at or above this index are never
    /// exported (activation variables are engine-local).
    share_var_limit: usize,
    /// Assumption literals for the current `solve_under_assumptions` call.
    assumptions: Vec<Lit>,
    /// Subset of the assumptions responsible for the last assumption
    /// failure (empty when the database itself is unsatisfiable).
    last_core: Vec<Lit>,
    /// Level-stamp scratch for LBD computation.
    lbd_stamp: Vec<u64>,
    lbd_counter: u64,
    /// When present, every clause added to or deleted from the database
    /// beyond the input constraints is recorded here (certification).
    proof: Option<ProofLog>,
    /// Soft cap on learnt-DB + proof bytes; exceeding it triggers an
    /// emergency reduction and, failing that, a clean `Unknown` exit.
    mem_limit: Option<usize>,
    /// Approximate bytes held by learnt clauses.
    learnt_bytes: usize,
    /// The clause being vivified: the propagator skips it so the clause
    /// never serves as its own entailment witness (without removing its
    /// watches, which stay valid).
    viv_guard: CRef,
    /// Conflict count at which the next inprocessing pass fires.
    next_inprocess: u64,
    /// Root-trail length after the last root simplification pass.
    simplified_trail: usize,
}

impl Engine {
    /// Creates an engine over `num_vars` binary variables.
    pub fn new(num_vars: usize) -> Self {
        let mut order = VarOrder::default();
        order.grow_to(num_vars);
        Engine {
            num_vars,
            assign: PackedVals::new(num_vars),
            level: vec![0; num_vars],
            reason: vec![Reason::None; num_vars],
            trail_pos: vec![0; num_vars],
            trail: Vec::with_capacity(num_vars),
            trail_lim: Vec::new(),
            qhead: 0,
            arena: ClauseArena::default(),
            watches: vec![Vec::new(); num_vars * 2],
            linears: Vec::new(),
            lin_occ: vec![Vec::new(); num_vars * 2],
            order,
            phase: BitVec::new(num_vars, false),
            var_inc: 1.0,
            var_decay: 0.95,
            cla_inc: 1.0,
            ok: true,
            n_learnt: 0,
            learnt_cap: 20_000,
            stats: EngineStats::default(),
            seen: BitVec::new(num_vars, false),
            features: EngineFeatures::default(),
            rng_state: 0x9e37_79b9_7f4a_7c15,
            interrupt: None,
            exchange: None,
            exchange_cursor: 0,
            exchange_import: true,
            bound_watch: None,
            bound_tag: i64::MAX,
            worker_id: 0,
            share_var_limit: usize::MAX,
            assumptions: Vec::new(),
            last_core: Vec::new(),
            lbd_stamp: vec![0; num_vars + 1],
            lbd_counter: 0,
            proof: None,
            mem_limit: None,
            learnt_bytes: 0,
            viv_guard: CREF_NONE,
            next_inprocess: 0,
            simplified_trail: 0,
        }
    }

    /// Adds a fresh variable and returns it. Used by the incremental
    /// optimisation loop to mint activation literals for reified
    /// objective-bound constraints; such variables live beyond the
    /// original model's index space.
    pub fn add_var(&mut self) -> Var {
        let v = self.num_vars as u32;
        self.num_vars += 1;
        self.assign.push_unassigned();
        self.level.push(0);
        self.reason.push(Reason::None);
        self.trail_pos.push(0);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.lin_occ.push(Vec::new());
        self.lin_occ.push(Vec::new());
        self.phase.push(self.features.default_phase);
        self.seen.push(false);
        self.lbd_stamp.push(0);
        self.order.grow_to(self.num_vars);
        Var(v)
    }

    /// Configures the engine's feature toggles and diversification knobs.
    ///
    /// Intended to be called before the first `solve`; it resets every
    /// saved phase to the configured default polarity.
    pub fn set_features(&mut self, features: EngineFeatures) {
        self.features = features;
        self.rng_state = features.seed ^ 0x9e37_79b9_7f4a_7c15;
        if self.rng_state == 0 {
            self.rng_state = 1;
        }
        self.learnt_cap = features.learnt_cap.max(16);
        self.phase.fill(features.default_phase);
    }

    /// Installs a cooperative-cancellation flag: when another thread sets
    /// it, the next budget poll returns [`SatResult::Unknown`].
    pub fn set_interrupt(&mut self, flag: Arc<AtomicBool>) {
        self.interrupt = Some(flag);
    }

    /// Connects this engine to a portfolio clause exchange as worker
    /// `worker_id`. Learnt units and low-LBD clauses over variables below
    /// `share_var_limit` are published with the engine's current
    /// objective-bound tag; foreign clauses are imported at solve start
    /// and at restart boundaries. `share_var_limit` keeps engine-local
    /// activation variables (see [`Engine::add_var`]) out of the pool.
    pub fn set_exchange(
        &mut self,
        exchange: Arc<ClauseExchange>,
        worker_id: usize,
        share_var_limit: usize,
    ) {
        self.exchange_cursor = exchange.len();
        self.exchange = Some(exchange);
        self.worker_id = worker_id;
        self.share_var_limit = share_var_limit;
    }

    /// Records the objective bound under which subsequently learnt units
    /// are valid (`i64::MAX` = no bound constraint added yet). Bounds in
    /// branch-and-bound only ever tighten, so the tag is monotone.
    pub fn set_bound_tag(&mut self, bound: i64) {
        self.bound_tag = bound;
    }

    /// Watches a shared best-objective cell (`i64::MAX` = no incumbent
    /// yet). At every amortised budget poll the engine compares the cell
    /// against its own bound tag; if the global incumbent implies a
    /// strictly tighter bound than the one this engine already enforces,
    /// the search returns [`SatResult::Unknown`] so the owner can post
    /// the tighter permanent bound constraint and re-enter mid-solve.
    pub fn set_bound_watch(&mut self, cell: Arc<AtomicI64>) {
        self.bound_watch = Some(cell);
    }

    /// Enables or disables importing foreign clauses from the exchange.
    /// Publishing is unaffected. The portfolio pins worker 0 to the
    /// undiversified sequential configuration; disabling imports keeps
    /// its search trace bit-identical to `threads = 1` until the race
    /// is already decided.
    pub fn set_exchange_import(&mut self, import: bool) {
        self.exchange_import = import;
    }

    /// True when the watched global incumbent implies a strictly tighter
    /// objective bound than this engine currently enforces.
    fn bound_watch_fired(&self) -> bool {
        match &self.bound_watch {
            Some(cell) => {
                let g = cell.load(Ordering::Relaxed);
                g != i64::MAX && g.saturating_sub(1) < self.bound_tag
            }
            None => false,
        }
    }

    /// Installs a proof log: from now on every learnt, imported or
    /// deleted clause is recorded so an `Unsat` verdict can be replayed
    /// by the independent checker. Install *after* the input constraints
    /// have been added — the checker derives those from the model itself.
    pub fn set_proof(&mut self, proof: ProofLog) {
        self.proof = Some(proof);
    }

    /// Removes and returns the proof log, if one was installed.
    pub fn take_proof(&mut self) -> Option<ProofLog> {
        self.proof.take()
    }

    /// Caps the approximate bytes held by the learnt database plus the
    /// proof log. When the cap is exceeded the engine first attempts an
    /// emergency database reduction and otherwise returns
    /// [`SatResult::Unknown`] instead of growing without bound.
    pub fn set_mem_limit(&mut self, bytes: usize) {
        self.mem_limit = Some(bytes);
    }

    /// Whether the memory cap is currently exceeded.
    fn over_mem_limit(&self) -> bool {
        let Some(limit) = self.mem_limit else {
            return false;
        };
        let proof_bytes = self.proof.as_ref().map_or(0, |p| p.bytes());
        self.learnt_bytes + proof_bytes > limit
    }

    fn next_rand(&mut self) -> u64 {
        // xorshift64*: plenty for decision tie-breaking.
        let mut x = self.rng_state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.rng_state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    /// Number of variables.
    pub fn num_vars(&self) -> usize {
        self.num_vars
    }

    /// Search statistics so far.
    pub fn stats(&self) -> EngineStats {
        self.stats
    }

    /// Whether the constraint database is already known unsatisfiable.
    pub fn is_ok(&self) -> bool {
        self.ok
    }

    /// Applies a branching hint: initial activity and preferred polarity.
    pub fn set_branch_hint(&mut self, var: Var, priority: f64, phase: bool) {
        self.phase.set(var.index(), phase);
        self.order.bump(var.0, priority);
    }

    #[inline]
    fn value_lit(&self, l: Lit) -> i8 {
        let c = self.assign.get(l.var().index());
        if c == 2 {
            UNASSIGNED
        } else {
            (c ^ (l.code() as u8 & 1)) as i8
        }
    }

    #[inline]
    fn is_true(&self, l: Lit) -> bool {
        self.value_lit(l) == 1
    }

    #[inline]
    fn is_false(&self, l: Lit) -> bool {
        self.value_lit(l) == 0
    }

    #[inline]
    fn is_unassigned(&self, l: Lit) -> bool {
        self.value_lit(l) == UNASSIGNED
    }

    /// The value of `var` in the most recent satisfying assignment.
    ///
    /// Only meaningful immediately after [`Engine::solve`] returned
    /// [`SatResult::Sat`] (the full trail is the model then).
    pub fn model_value(&self, var: Var) -> bool {
        self.assign.get(var.index()) == 1
    }

    fn decision_level(&self) -> u32 {
        self.trail_lim.len() as u32
    }

    /// Adds a normalised constraint at decision level 0.
    ///
    /// Returns `false` if the database became unsatisfiable.
    pub fn add_norm(&mut self, nc: NormConstraint) -> bool {
        self.cancel_until(0);
        if !self.ok {
            return false;
        }
        match nc {
            NormConstraint::False => {
                self.ok = false;
            }
            NormConstraint::Unit(l) => {
                if self.is_false(l) {
                    self.ok = false;
                } else if self.is_unassigned(l) {
                    self.enqueue(l, Reason::None);
                }
            }
            NormConstraint::Clause(mut lits) => {
                // Deduplicate; drop if tautological or already satisfied;
                // remove false literals (all at level 0 here).
                lits.sort_by_key(|l| l.code());
                lits.dedup();
                if lits.windows(2).any(|w| w[0].var() == w[1].var()) {
                    return self.ok; // contains l and !l: tautology
                }
                if lits.iter().any(|&l| self.is_true(l)) {
                    return self.ok;
                }
                lits.retain(|&l| !self.is_false(l));
                match lits.len() {
                    0 => self.ok = false,
                    1 => {
                        self.enqueue(lits[0], Reason::None);
                    }
                    _ => {
                        self.attach_clause(&lits, false, 0);
                    }
                }
            }
            NormConstraint::AtMost { terms, bound } => {
                let max_coeff = terms.iter().map(|&(a, _)| a).max().unwrap_or(0);
                let mut sum_true = 0u64;
                for &(a, l) in &terms {
                    if self.is_true(l) {
                        sum_true += a;
                    }
                }
                let idx = self.linears.len() as u32;
                for (ti, &(_, l)) in terms.iter().enumerate() {
                    self.lin_occ[l.code()].push((idx, ti as u32));
                }
                self.linears.push(Linear {
                    terms,
                    bound,
                    sum_true,
                    max_coeff,
                });
                if sum_true > bound {
                    self.ok = false;
                } else {
                    // Propagate any literal already forced at level 0.
                    if let Some(confl) = self.propagate_linear_scan(idx) {
                        let _ = confl;
                        self.ok = false;
                    }
                }
            }
        }
        if self.ok {
            // Settle root-level propagation.
            if self.propagate().is_some() {
                self.ok = false;
            }
        }
        self.ok
    }

    fn attach_clause(&mut self, lits: &[Lit], learnt: bool, lbd: u32) -> CRef {
        debug_assert!(lits.len() >= 2);
        let r = self.arena.alloc(lits, learnt, lbd);
        if learnt {
            self.n_learnt += 1;
            self.learnt_bytes += clause_bytes(lits.len());
        }
        self.watches[(!lits[0]).code()].push(Watch {
            cref: r,
            blocker: lits[1],
        });
        self.watches[(!lits[1]).code()].push(Watch {
            cref: r,
            blocker: lits[0],
        });
        r
    }

    /// Marks a clause deleted, releasing its accounting and (for learnt
    /// clauses) recording the deletion in the proof. Its watches are
    /// removed lazily by the propagator and dropped at the next GC; its
    /// literals stay readable until then.
    fn delete_clause(&mut self, r: CRef) {
        debug_assert!(!self.arena.is_deleted(r));
        if self.arena.is_learnt(r) {
            if self.proof.is_some() {
                let lits = self.arena.collect_lits(r);
                if let Some(p) = self.proof.as_mut() {
                    p.delete(&lits);
                }
            }
            self.n_learnt -= 1;
            self.learnt_bytes = self
                .learnt_bytes
                .saturating_sub(clause_bytes(self.arena.len(r)));
        }
        self.arena.mark_deleted(r);
    }

    fn enqueue(&mut self, l: Lit, reason: Reason) {
        debug_assert!(self.is_unassigned(l));
        // Linear counters update eagerly so that backtracking (which
        // decrements for every popped literal) stays symmetric even when a
        // conflict interrupts propagation before this literal is processed.
        for k in 0..self.lin_occ[l.code()].len() {
            let (lin, term) = self.lin_occ[l.code()][k];
            let c = self.linears[lin as usize].terms[term as usize].0;
            self.linears[lin as usize].sum_true += c;
        }
        let v = l.var().index();
        self.assign.set(v, (l.code() as u8 & 1) ^ 1);
        self.level[v] = self.decision_level();
        self.reason[v] = if self.decision_level() == 0 {
            // Level-0 assignments never participate in conflict analysis,
            // so dropping the reason keeps learnt-DB reduction safe.
            Reason::None
        } else {
            reason
        };
        self.trail_pos[v] = self.trail.len() as u32;
        self.trail.push(l);
        self.stats.propagations += 1;
    }

    /// Propagates until fixpoint; returns a conflict if one arises.
    fn propagate(&mut self) -> Option<Conflict> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;

            // Clause propagation: clauses watching !p (p became true, so
            // the watched literal !p became false).
            let mut i = 0;
            let mut watches = std::mem::take(&mut self.watches[p.code()]);
            let mut keep = watches.len();
            let mut conflict = None;
            'watches: while i < keep {
                let w = watches[i];
                if self.is_true(w.blocker) {
                    i += 1;
                    continue;
                }
                let r = w.cref;
                // The clause under vivification must not witness its own
                // entailment; skip it, keeping the watch.
                if r == self.viv_guard {
                    i += 1;
                    continue;
                }
                // Deleted clauses may linger in watch lists until GC.
                if self.arena.is_deleted(r) {
                    watches.swap(i, keep - 1);
                    keep -= 1;
                    continue;
                }
                let false_lit = !p;
                if self.arena.lit(r, 0) == false_lit {
                    self.arena.swap_lits(r, 0, 1);
                }
                let first = self.arena.lit(r, 0);
                if first != w.blocker && self.is_true(first) {
                    watches[i].blocker = first;
                    i += 1;
                    continue;
                }
                // Look for a new literal to watch.
                let len = self.arena.len(r);
                for k in 2..len {
                    let cand = self.arena.lit(r, k);
                    if !self.is_false(cand) {
                        self.arena.swap_lits(r, 1, k);
                        self.watches[(!cand).code()].push(Watch {
                            cref: r,
                            blocker: first,
                        });
                        watches.swap(i, keep - 1);
                        keep -= 1;
                        continue 'watches;
                    }
                }
                // No new watch: unit or conflict on lits[0].
                if self.is_false(first) {
                    conflict = Some(Conflict::Clause(r));
                    break;
                }
                self.enqueue(first, Reason::Clause(r));
                i += 1;
            }
            watches.truncate(keep);
            debug_assert!(self.watches[p.code()].is_empty());
            self.watches[p.code()] = watches;
            if conflict.is_some() {
                return conflict;
            }

            // Linear propagation: counters were updated at enqueue time;
            // here we only check for conflicts and force literals.
            let occs = std::mem::take(&mut self.lin_occ[p.code()]);
            let mut conflict = None;
            for &(lin, _term) in &occs {
                let l = &self.linears[lin as usize];
                if l.sum_true > l.bound {
                    conflict = Some(Conflict::Linear(lin));
                    break;
                }
                let slack = l.bound - l.sum_true;
                if l.max_coeff > slack {
                    if let Some(c) = self.propagate_linear_scan(lin) {
                        conflict = Some(c);
                        break;
                    }
                }
            }
            self.lin_occ[p.code()] = occs;
            if conflict.is_some() {
                return conflict;
            }
        }
        None
    }

    /// Forces to false every unassigned literal whose coefficient exceeds
    /// the constraint's remaining slack.
    fn propagate_linear_scan(&mut self, lin: u32) -> Option<Conflict> {
        let l = &self.linears[lin as usize];
        if l.sum_true > l.bound {
            return Some(Conflict::Linear(lin));
        }
        let slack = l.bound - l.sum_true;
        let mut forced: Vec<Lit> = Vec::new();
        for &(a, lit) in &l.terms {
            if a > slack && self.is_unassigned(lit) {
                forced.push(!lit);
            }
        }
        for f in forced {
            if self.is_false(f) {
                return Some(Conflict::Linear(lin));
            }
            if self.is_unassigned(f) {
                self.enqueue(f, Reason::Linear(lin));
            }
        }
        None
    }

    /// Antecedent literals (all currently false) that imply `implied`
    /// under the given reason; `implied = None` explains a conflict.
    fn explain(&self, conflict: Conflict, implied: Option<Lit>) -> Vec<Lit> {
        match conflict {
            Conflict::Clause(c) => (0..self.arena.len(c))
                .map(|i| self.arena.lit(c, i))
                .filter(|&l| Some(l) != implied)
                .collect(),
            Conflict::Linear(lin) => {
                let l = &self.linears[lin as usize];
                // Needed weight: enough true literals to exceed the bound
                // (conflict) or the bound minus the implied literal's
                // coefficient (propagation).
                let mut needed: u128 = u128::from(l.bound) + 1;
                let limit_pos = implied.map(|il| self.trail_pos[il.var().index()]);
                if let Some(il) = implied {
                    let a = l
                        .terms
                        .iter()
                        .find(|&&(_, t)| t == !il)
                        .map(|&(a, _)| a)
                        .expect("implied literal negates a term of the constraint");
                    needed = needed.saturating_sub(u128::from(a));
                }
                let mut trues: Vec<(u64, Lit)> = l
                    .terms
                    .iter()
                    .copied()
                    .filter(|&(_, t)| {
                        self.is_true(t)
                            && limit_pos
                                .map(|p| self.trail_pos[t.var().index()] < p)
                                .unwrap_or(true)
                    })
                    .collect();
                // Prefer large coefficients for a short explanation.
                trues.sort_by_key(|t| std::cmp::Reverse(t.0));
                let mut acc: u128 = 0;
                let mut out = Vec::new();
                for (a, t) in trues {
                    if acc >= needed {
                        break;
                    }
                    acc += u128::from(a);
                    out.push(!t);
                }
                debug_assert!(acc >= needed, "explanation must justify propagation");
                out
            }
        }
    }

    fn reason_conflict(&self, v: usize) -> Option<Conflict> {
        match self.reason[v] {
            Reason::None => None,
            Reason::Clause(c) => Some(Conflict::Clause(c)),
            Reason::Linear(l) => Some(Conflict::Linear(l)),
        }
    }

    /// First-UIP conflict analysis. Returns the learnt clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, conflict: Conflict) -> (Vec<Lit>, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // slot for asserting literal
        let mut path = 0usize;
        let mut idx = self.trail.len();
        let mut antecedent = self.explain(conflict, None);
        if let Conflict::Clause(c) = conflict {
            self.bump_clause(c);
        }
        let current = self.decision_level();
        let mut rescale = false;
        loop {
            for &q in &antecedent {
                let v = q.var().index();
                if !self.seen.get(v) && self.level[v] > 0 {
                    self.seen.set(v, true);
                    if self.features.vsids {
                        rescale |= self.order.bump(q.var().0, self.var_inc);
                    }
                    if self.level[v] == current {
                        path += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Walk the trail backwards to the next marked literal.
            loop {
                idx -= 1;
                if self.seen.get(self.trail[idx].var().index()) {
                    break;
                }
            }
            let p = self.trail[idx];
            self.seen.set(p.var().index(), false);
            path -= 1;
            if path == 0 {
                learnt[0] = !p;
                break;
            }
            let r = self
                .reason_conflict(p.var().index())
                .expect("non-decision literal has a reason");
            if let Conflict::Clause(c) = r {
                self.bump_clause(c);
            }
            antecedent = self.explain(r, Some(p));
        }
        if !self.features.minimization {
            for &l in &learnt[1..] {
                self.seen.set(l.var().index(), false);
            }
            return self.finish_analysis(learnt, rescale);
        }
        // Conflict-clause minimisation: a literal is redundant if its
        // reason's antecedents are all already in the clause (or at level
        // 0). One non-recursive pass catches most redundancies.
        for &l in &learnt[1..] {
            self.seen.set(l.var().index(), true);
        }
        let mut minimized = vec![learnt[0]];
        for &l in &learnt[1..] {
            let keep = match self.reason_conflict(l.var().index()) {
                None => true,
                Some(r) => {
                    let ante = self.explain(r, Some(!l));
                    !ante
                        .iter()
                        .all(|a| self.seen.get(a.var().index()) || self.level[a.var().index()] == 0)
                }
            };
            if keep {
                minimized.push(l);
            } else {
                self.seen.set(l.var().index(), false);
            }
        }
        for &l in &minimized[1..] {
            self.seen.set(l.var().index(), false);
        }
        self.finish_analysis(minimized, rescale)
    }

    fn finish_analysis(&mut self, mut learnt: Vec<Lit>, rescale: bool) -> (Vec<Lit>, u32) {
        if rescale {
            self.order.rescale();
            self.var_inc *= 1e-100;
        }
        self.var_inc /= self.var_decay;

        // Backjump level: highest level among learnt[1..].
        let mut bt = 0;
        if learnt.len() > 1 {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            bt = self.level[learnt[1].var().index()];
        }
        (learnt, bt)
    }

    fn bump_clause(&mut self, c: CRef) {
        if !self.arena.is_learnt(c) {
            return;
        }
        let a = self.arena.activity(c) + self.cla_inc;
        self.arena.set_activity(c, a);
        // A bumped clause proved useful: reset its idle-reduction count.
        self.arena.set_age(c, 0);
        if a > 1e20 {
            self.arena.rescale_activities(1e-20);
            self.cla_inc *= 1e-20;
        }
        self.cla_inc /= 0.999;
    }

    fn cancel_until(&mut self, target: u32) {
        if self.decision_level() <= target {
            return;
        }
        let lim = self.trail_lim[target as usize];
        for i in (lim..self.trail.len()).rev() {
            let p = self.trail[i];
            let v = p.var().index();
            if self.features.phase_saving {
                let ph = self.assign.get(v) == 1;
                self.phase.set(v, ph);
            }
            self.assign.set(v, 2);
            self.reason[v] = Reason::None;
            self.order.insert(p.var().0);
            for &(lin, term) in &self.lin_occ[p.code()] {
                let l = &mut self.linears[lin as usize];
                l.sum_true -= l.terms[term as usize].0;
            }
        }
        self.trail.truncate(lim);
        self.trail_lim.truncate(target as usize);
        self.qhead = self.trail.len();
    }

    fn decide(&mut self) -> bool {
        if self.features.random_tiebreak && self.next_rand().is_multiple_of(64) {
            // Diversification: probe a few random heap slots for an
            // unassigned variable and branch on it instead of the
            // activity maximum.
            for _ in 0..4 {
                if self.order.len() == 0 {
                    break;
                }
                let i = (self.next_rand() % self.order.len() as u64) as usize;
                let v = self.order.peek_at(i);
                if self.assign.get(v as usize) == 2 {
                    self.order.remove_at(i);
                    self.make_decision(v);
                    return true;
                }
            }
        }
        while let Some(v) = self.order.pop_max() {
            if self.assign.get(v as usize) == 2 {
                self.make_decision(v);
                return true;
            }
        }
        false
    }

    fn make_decision(&mut self, v: u32) {
        self.trail_lim.push(self.trail.len());
        let var = Var(v);
        let lit = if self.phase.get(v as usize) {
            Lit::positive(var)
        } else {
            Lit::negative(var)
        };
        self.enqueue(lit, Reason::None);
        self.stats.decisions += 1;
    }

    /// Literal-block distance: the number of distinct decision levels
    /// among the clause's literals. Computed with a stamp array so the
    /// cost is one pass, no allocation.
    fn compute_lbd(&mut self, lits: &[Lit]) -> u32 {
        self.lbd_counter += 1;
        let stamp = self.lbd_counter;
        let mut lbd = 0u32;
        for &l in lits {
            let lev = self.level[l.var().index()] as usize;
            if self.lbd_stamp[lev] != stamp {
                self.lbd_stamp[lev] = stamp;
                lbd += 1;
            }
        }
        lbd
    }

    /// LBD-tiered database reduction with age-based demotion. Glue
    /// clauses (`lbd <= glue_lbd`, the core tier) are never deleted; the
    /// remaining learnt clauses are ranked by age-penalised LBD (higher
    /// first) then activity (lower first) and the worst half is dropped.
    /// Independently of the ranking, any candidate that has survived
    /// [`MAX_CLAUSE_AGE`] reductions without being bumped is evicted —
    /// this is what ages out mid-tier clauses that stopped being useful.
    /// Ends with a compacting GC that rebuilds the arena in watch order.
    fn reduce_db(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        let glue = self.features.glue_lbd;
        let mid = self.features.mid_lbd.max(glue);
        let mut kept_core = 0u64;
        let mut candidates: Vec<(u32, CRef)> = Vec::new();
        for r in self.arena.crefs() {
            if !self.arena.is_learnt(r) || self.arena.is_deleted(r) {
                continue;
            }
            let lbd = self.arena.lbd(r);
            if lbd <= glue {
                kept_core += 1;
            } else {
                candidates.push((lbd, r));
            }
        }
        if candidates.len() < 2 {
            self.rebuild_watches();
            self.garbage_collect();
            return;
        }
        // Rank by LBD (worst first), then activity (coldest first); the
        // sort is stable, so ties keep arena (creation) order.
        candidates.sort_by(|&(ka, a), &(kb, b)| {
            kb.cmp(&ka).then(
                self.arena
                    .activity(a)
                    .partial_cmp(&self.arena.activity(b))
                    .expect("activities are finite"),
            )
        });
        let doomed = candidates.len() / 2;
        let mut deleted = 0u64;
        let (mut deleted_mid, mut deleted_local) = (0u64, 0u64);
        let (mut kept_mid, mut kept_local) = (0u64, 0u64);
        for (rank, &(_, r)) in candidates.iter().enumerate() {
            let lbd = self.arena.lbd(r);
            // Rank-based deletion handles the local tier (high LBD sorts
            // first); the age cutoff is what retires mid-tier clauses,
            // which outrank every local and would otherwise live forever.
            let aged_out = lbd <= mid && self.arena.age(r) >= MAX_CLAUSE_AGE;
            if rank < doomed || aged_out {
                if lbd <= mid {
                    deleted_mid += 1;
                } else {
                    deleted_local += 1;
                }
                self.delete_clause(r);
                deleted += 1;
            } else {
                if lbd <= mid {
                    kept_mid += 1;
                } else {
                    kept_local += 1;
                }
                let age = self.arena.age(r);
                self.arena.set_age(r, age + 1);
            }
        }
        self.stats.deleted_clauses += deleted;
        self.stats.deleted_mid += deleted_mid;
        self.stats.deleted_local += deleted_local;
        self.stats.kept_core = kept_core;
        self.stats.kept_mid = kept_mid;
        self.stats.kept_local = kept_local;
        // Re-canonicalise watch lists (creation order) before compacting:
        // the GC then lays clauses out in exactly the order propagation
        // scans them.
        self.rebuild_watches();
        self.garbage_collect();
    }

    /// Rebuilds every watch list from scratch, visiting live clauses in
    /// arena (creation) order — the blocker of each watch is the other
    /// watched literal. Only legal at decision level 0.
    fn rebuild_watches(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        for w in &mut self.watches {
            w.clear();
        }
        for r in self.arena.crefs() {
            if self.arena.is_deleted(r) {
                continue;
            }
            let (w0, w1) = (self.arena.lit(r, 0), self.arena.lit(r, 1));
            self.watches[(!w0).code()].push(Watch {
                cref: r,
                blocker: w1,
            });
            self.watches[(!w1).code()].push(Watch {
                cref: r,
                blocker: w0,
            });
        }
    }

    /// Compacting arena GC: copies live clauses into a fresh buffer in
    /// arena (creation) order, drops stale watches of deleted clauses,
    /// and rewrites the surviving watches through the forwarding
    /// references. After the watch rebuild that precedes it in
    /// `reduce_db`, creation order *is* the order watch lists scan
    /// clauses, so propagation visits adjacent memory. Preserving
    /// creation order (rather than first-watch-visit order) also keeps
    /// the reduction ranking's stable-sort tie-break independent of how
    /// many compactions have run. Only legal at decision level 0, where
    /// no clause is a reason.
    fn garbage_collect(&mut self) {
        debug_assert_eq!(self.decision_level(), 0);
        debug_assert_eq!(self.viv_guard, CREF_NONE);
        let live_words = self.arena.data.len() - self.arena.wasted;
        let mut to = ClauseArena::with_capacity(live_words);
        for r in self.arena.crefs() {
            if !self.arena.is_deleted(r) {
                self.arena.reloc(r, &mut to);
            }
        }
        for code in 0..self.watches.len() {
            let mut ws = std::mem::take(&mut self.watches[code]);
            ws.retain(|w| !self.arena.is_deleted(w.cref));
            for w in &mut ws {
                w.cref = self.arena.reloc(w.cref, &mut to);
            }
            self.watches[code] = ws;
        }
        self.arena = to;
        self.stats.gc_runs += 1;
    }

    /// Replaces clause `r` with `kept` (a subset of its literals),
    /// logging add-then-delete so a certifying replay stays RUP-valid
    /// (the strengthened clause is derived while the original is still
    /// present). Preserves the learnt flag and activity. Returns `false`
    /// if the database became unsatisfiable.
    fn replace_clause(&mut self, r: CRef, kept: &[Lit], origin: ProofOrigin) -> bool {
        debug_assert!(kept.len() < self.arena.len(r));
        let learnt = self.arena.is_learnt(r);
        if let Some(p) = self.proof.as_mut() {
            p.add(kept, origin);
        }
        match kept.len() {
            0 => {
                self.delete_clause(r);
                self.ok = false;
                false
            }
            1 => {
                self.delete_clause(r);
                if self.is_false(kept[0]) {
                    self.ok = false;
                    false
                } else {
                    if self.is_unassigned(kept[0]) {
                        self.enqueue(kept[0], Reason::None);
                    }
                    true
                }
            }
            _ => {
                let lbd = self.arena.lbd(r).min(kept.len() as u32);
                let act = self.arena.activity(r);
                self.delete_clause(r);
                let nr = self.attach_clause(kept, learnt, lbd);
                self.arena.set_activity(nr, act);
                true
            }
        }
    }

    /// One inprocessing pass (at a restart boundary, decision level 0):
    /// root simplification, vivification, subsumption, then a final
    /// propagation to settle derived units, and an arena compaction when
    /// the rewrites left a meaningful fraction of the buffer dead.
    /// Returns `false` when the database was proven unsatisfiable.
    fn inprocess(&mut self) -> bool {
        // Vivification churns the database hardest (every shortened
        // clause re-attaches and re-seeds subsumption), so it runs on a
        // slower cadence than the cheap passes, and only on long
        // searches.
        let vivify = (self.stats.inprocessings + 1) % VIVIFY_CADENCE == 1
            && self.stats.conflicts >= VIVIFY_ONSET;
        self.inprocess_with(vivify)
    }

    /// [`Engine::inprocess`] with the vivification cadence decision made
    /// by the caller (the test hooks force it on).
    fn inprocess_with(&mut self, vivify: bool) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        self.stats.inprocessings += 1;
        if !self.simplify_roots() {
            return false;
        }
        if vivify && !self.vivify_round() {
            return false;
        }
        if !self.subsume_round() {
            return false;
        }
        if self.propagate().is_some() {
            self.ok = false;
            return false;
        }
        if self.arena.wasted > 0 && self.arena.wasted * 8 >= self.arena.data.len() {
            self.garbage_collect();
        }
        true
    }

    /// Root-level database simplification: deletes clauses satisfied at
    /// level 0 and strips root-falsified literals — the re-presolve over
    /// root units accumulated since the previous pass. Skipped entirely
    /// when the root trail has not grown.
    fn simplify_roots(&mut self) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        if self.trail.len() == self.simplified_trail {
            return true;
        }
        self.simplified_trail = self.trail.len();
        for r in self.arena.crefs() {
            if self.arena.is_deleted(r) {
                continue;
            }
            let len = self.arena.len(r);
            let mut satisfied = false;
            let mut n_false = 0usize;
            for i in 0..len {
                let l = self.arena.lit(r, i);
                if self.is_true(l) {
                    satisfied = true;
                    break;
                }
                if self.is_false(l) {
                    n_false += 1;
                }
            }
            if satisfied {
                self.delete_clause(r);
                continue;
            }
            if n_false == 0 {
                continue;
            }
            let kept: Vec<Lit> = self
                .arena
                .collect_lits(r)
                .into_iter()
                .filter(|&l| !self.is_false(l))
                .collect();
            if !self.replace_clause(r, &kept, ProofOrigin::Inprocess) {
                return false;
            }
        }
        true
    }

    /// One bounded vivification pass over low-LBD learnt clauses,
    /// shortest-glue first, stopping when the propagation budget runs
    /// out. Returns `false` on root unsatisfiability.
    fn vivify_round(&mut self) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        let budget = self.features.vivify_budget;
        if budget == 0 {
            return true;
        }
        let mid = self.features.mid_lbd.max(self.features.glue_lbd);
        let mut cands: Vec<(u32, CRef)> = Vec::new();
        for r in self.arena.crefs() {
            if !self.arena.is_learnt(r) || self.arena.is_deleted(r) {
                continue;
            }
            let len = self.arena.len(r);
            if !(3..=12).contains(&len) {
                continue;
            }
            let lbd = self.arena.lbd(r);
            if lbd <= mid {
                cands.push((lbd, r));
            }
        }
        // Most valuable first: low-LBD clauses steer the most propagation.
        cands.sort_unstable();
        let start = self.stats.propagations;
        for (_, r) in cands {
            if self.stats.propagations - start >= budget {
                break;
            }
            if self.arena.is_deleted(r) {
                continue;
            }
            if !self.vivify_one(r) {
                return false;
            }
        }
        true
    }

    /// Vivifies one clause: asserts the negation of each literal in turn
    /// (each on its own decision level) and propagates with the clause
    /// guarded out of the propagator. A conflict or an implied-true
    /// literal proves the prefix entails the clause (shorten to the
    /// prefix); an implied-false literal is redundant (drop it). The
    /// propagations recorded here are ordinary engine propagations and
    /// count against the pass budget. Returns `false` on root
    /// unsatisfiability.
    fn vivify_one(&mut self, r: CRef) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        let lits = self.arena.collect_lits(r);
        if lits.iter().any(|&l| self.is_true(l)) {
            // Became satisfied at the root since candidate collection.
            self.delete_clause(r);
            return true;
        }
        self.viv_guard = r;
        // Probe assignments are not search: they must not overwrite the
        // saved phases the next descent restart will resume from.
        let saved_phase_saving = self.features.phase_saving;
        self.features.phase_saving = false;
        let mut kept: Vec<Lit> = Vec::with_capacity(lits.len());
        for &l in &lits {
            match self.value_lit(l) {
                1 => {
                    // Earlier negations imply l: the prefix plus l is
                    // entailed, the remaining literals are redundant.
                    kept.push(l);
                    break;
                }
                0 => continue, // ¬l already follows: l is redundant
                _ => {
                    self.trail_lim.push(self.trail.len());
                    self.enqueue(!l, Reason::None);
                    kept.push(l);
                    if self.propagate().is_some() {
                        // Negated prefix is contradictory: prefix entailed.
                        break;
                    }
                }
            }
        }
        self.cancel_until(0);
        self.features.phase_saving = saved_phase_saving;
        self.viv_guard = CREF_NONE;
        if kept.len() >= lits.len() {
            return true;
        }
        self.stats.vivified_lits += (lits.len() - kept.len()) as u64;
        self.replace_clause(r, &kept, ProofOrigin::Inprocess)
    }

    /// One bounded backward-subsumption / self-subsuming-resolution pass
    /// over the learnt database. Clauses carry a 64-bit variable
    /// signature; for each short clause C the occurrence list of its
    /// least-frequent literal is scanned for clauses D with C ⊆ D
    /// (delete D) or C ⊆ D with exactly one literal flipped (resolve:
    /// strengthen D by dropping the flipped literal's negation).
    /// Returns `false` on root unsatisfiability.
    fn subsume_round(&mut self) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        const MAX_CLAUSE_LEN: usize = 30;
        const SUBSUMER_LEN: usize = 16;
        const CHECK_BUDGET: usize = 400_000;

        let mut clauses: Vec<CRef> = Vec::new();
        for r in self.arena.crefs() {
            if self.arena.is_learnt(r)
                && !self.arena.is_deleted(r)
                && self.arena.len(r) <= MAX_CLAUSE_LEN
            {
                clauses.push(r);
            }
        }
        if clauses.len() < 2 {
            return true;
        }
        // Occurrence lists are keyed by *variable*, not literal: a
        // strengthening partner contains the negation of one subsumer
        // literal, so a literal-keyed list would never surface it.
        let mut sig: std::collections::HashMap<CRef, u64> = std::collections::HashMap::new();
        let mut occ: std::collections::HashMap<usize, Vec<CRef>> = std::collections::HashMap::new();
        for &r in &clauses {
            let mut s = 0u64;
            for i in 0..self.arena.len(r) {
                let l = self.arena.lit(r, i);
                s |= 1u64 << (l.var().0 & 63);
                occ.entry(l.var().index()).or_default().push(r);
            }
            sig.insert(r, s);
        }
        let mut stamp: Vec<u64> = vec![0; self.num_vars * 2];
        let mut stamp_gen = 0u64;
        let mut checks = 0usize;
        'outer: for &c in &clauses {
            if self.arena.is_deleted(c) {
                continue;
            }
            let c_len = self.arena.len(c);
            if c_len > SUBSUMER_LEN {
                continue;
            }
            // Scan the occurrence list of C's least-occurring variable:
            // any D that C subsumes or strengthens mentions it.
            let mut best: Option<usize> = None;
            for i in 0..c_len {
                let v = self.arena.lit(c, i).var().index();
                let n = occ.get(&v).map_or(0, Vec::len);
                if best.is_none_or(|b| {
                    n < occ
                        .get(&self.arena.lit(c, b).var().index())
                        .map_or(0, Vec::len)
                }) {
                    best = Some(i);
                }
            }
            let cand_list: Vec<CRef> = best
                .and_then(|i| occ.get(&self.arena.lit(c, i).var().index()))
                .cloned()
                .unwrap_or_default();
            let c_sig = sig[&c];
            for d in cand_list {
                if d == c || self.arena.is_deleted(d) || self.arena.is_deleted(c) {
                    continue;
                }
                let d_len = self.arena.len(d);
                if d_len < c_len || c_sig & !sig[&d] != 0 {
                    continue;
                }
                checks += c_len + d_len;
                if checks > CHECK_BUDGET {
                    break 'outer;
                }
                stamp_gen += 1;
                for i in 0..d_len {
                    stamp[self.arena.lit(d, i).code()] = stamp_gen;
                }
                let mut flipped: Option<Lit> = None;
                let mut fits = true;
                for i in 0..c_len {
                    let l = self.arena.lit(c, i);
                    if stamp[l.code()] == stamp_gen {
                        continue;
                    }
                    if flipped.is_none() && stamp[(!l).code()] == stamp_gen {
                        flipped = Some(l);
                        continue;
                    }
                    fits = false;
                    break;
                }
                if !fits {
                    continue;
                }
                match flipped {
                    None => {
                        // C ⊆ D: D is redundant.
                        self.delete_clause(d);
                        self.stats.subsumed_clauses += 1;
                    }
                    Some(l) => {
                        // Self-subsuming resolution of D with C on l.
                        let kept: Vec<Lit> = self
                            .arena
                            .collect_lits(d)
                            .into_iter()
                            .filter(|&x| x != !l)
                            .collect();
                        self.stats.strengthened_lits += 1;
                        if !self.replace_clause(d, &kept, ProofOrigin::Inprocess) {
                            return false;
                        }
                    }
                }
            }
        }
        true
    }

    /// Polls the wall-clock deadline and the cooperative interrupt flag.
    /// Called every [`POLL_INTERVAL`] propagations + conflicts.
    fn budget_exhausted(&self, budget: &Budget) -> bool {
        if let Some(flag) = &self.interrupt {
            if flag.load(Ordering::Relaxed) {
                return true;
            }
        }
        if let Some(deadline) = budget.deadline {
            if Instant::now() >= deadline {
                return true;
            }
        }
        false
    }

    /// Publishes a freshly learnt clause (or unit) to the portfolio
    /// exchange if it qualifies: LBD at most `share_lbd` (units always
    /// qualify), length at most `share_len`, and no variable at or above
    /// the share limit (activation variables stay local).
    fn publish_learnt(&mut self, lits: &[Lit], lbd: u32) {
        let Some(ex) = &self.exchange else {
            return;
        };
        let f = &self.features;
        if lits.len() > 1 && (lbd > f.share_lbd || lits.len() > f.share_len) {
            return;
        }
        if lits.iter().any(|l| l.var().index() >= self.share_var_limit) {
            return;
        }
        if ex.publish(self.worker_id, lits, lbd, self.bound_tag) {
            self.stats.exported_clauses += 1;
        }
    }

    /// Imports clauses learnt by other portfolio workers. Must be called
    /// at decision level 0. Returns `false` on derived conflict.
    fn import_shared(&mut self) -> bool {
        debug_assert_eq!(self.decision_level(), 0);
        if !self.exchange_import {
            return true;
        }
        let Some(ex) = self.exchange.clone() else {
            return true;
        };
        let my_bound = self.bound_tag;
        let my_id = self.worker_id;
        let mut cursor = self.exchange_cursor;
        let mut ok = true;
        let mut incoming: Vec<(Vec<Lit>, u32)> = Vec::new();
        ex.import_since(&mut cursor, my_bound, my_id, |lits, lbd| {
            incoming.push((lits.to_vec(), lbd));
        });
        self.exchange_cursor = cursor;
        'clauses: for (lits, lbd) in incoming {
            if !ok {
                break;
            }
            // Simplify against the level-0 assignment.
            let mut kept = Vec::with_capacity(lits.len());
            for l in lits {
                if self.is_true(l) {
                    continue 'clauses; // already satisfied forever
                }
                if !self.is_false(l) {
                    kept.push(l);
                }
            }
            self.stats.imported_clauses += 1;
            // Imported clauses join the database, so a certifying replay
            // must re-derive them like any learnt clause.
            if let Some(p) = self.proof.as_mut() {
                p.add(&kept, ProofOrigin::Imported);
            }
            match kept.len() {
                0 => ok = false,
                1 => self.enqueue(kept[0], Reason::None),
                _ => {
                    let lbd = lbd.min(kept.len() as u32);
                    self.attach_clause(&kept, true, lbd);
                }
            }
        }
        if ok && self.propagate().is_some() {
            ok = false;
        }
        if !ok {
            self.ok = false;
        }
        ok
    }

    /// The subset of the most recent `solve_under_assumptions` call's
    /// assumptions that the refutation depends on. Empty when the last
    /// result was not an assumption failure — in particular, empty when
    /// the constraint database is unsatisfiable on its own.
    pub fn unsat_core(&self) -> &[Lit] {
        &self.last_core
    }

    /// Computes the assumption subset responsible for `p` (an assumption
    /// literal currently falsified) being false: walks the trail above
    /// level 0 resolving reasons; decisions reached are assumptions.
    fn analyze_final(&mut self, p: Lit) {
        self.last_core.clear();
        self.last_core.push(p);
        if self.decision_level() == 0 {
            return;
        }
        self.seen.set(p.var().index(), true);
        for i in (self.trail_lim[0]..self.trail.len()).rev() {
            let q = self.trail[i];
            let v = q.var().index();
            if !self.seen.get(v) {
                continue;
            }
            match self.reason_conflict(v) {
                // Above level 0 every reason-free trail literal is an
                // enqueued assumption (real decisions cannot precede full
                // assumption establishment).
                None => self.last_core.push(q),
                Some(r) => {
                    for a in self.explain(r, Some(q)) {
                        if self.level[a.var().index()] > 0 {
                            self.seen.set(a.var().index(), true);
                        }
                    }
                }
            }
            self.seen.set(v, false);
        }
        self.seen.set(p.var().index(), false);
    }

    /// Runs CDCL search under the given budget.
    pub fn solve(&mut self, budget: Budget) -> SatResult {
        self.solve_under_assumptions(budget, &[])
    }

    /// Runs CDCL search with every literal in `assumptions` held true.
    ///
    /// Assumptions are enqueued as pseudo-decisions (one per decision
    /// level, MiniSat style) and vanish when the search ends — nothing is
    /// added to the constraint database, so the engine stays reusable with
    /// a different assumption set and every clause learnt under one set
    /// remains valid under any other. On [`SatResult::Unsat`] caused by
    /// the assumptions, [`Engine::unsat_core`] names the responsible
    /// subset and [`Engine::is_ok`] stays `true`; an Unsat with `is_ok()
    /// == false` means the database itself is unsatisfiable (the core is
    /// empty then).
    pub fn solve_under_assumptions(&mut self, budget: Budget, assumptions: &[Lit]) -> SatResult {
        self.last_core.clear();
        if !self.ok {
            return SatResult::Unsat;
        }
        self.cancel_until(0);
        if self.propagate().is_some() {
            self.ok = false;
            return SatResult::Unsat;
        }
        if !self.import_shared() {
            return SatResult::Unsat;
        }
        self.assumptions = assumptions.to_vec();
        let result = self.search(budget);
        self.assumptions = Vec::new();
        // Leave no assumption levels behind: the next `add_norm` or solve
        // would cancel anyway, but callers read models off the trail only
        // after Sat, and Sat keeps the full trail intact deliberately.
        if result != SatResult::Sat {
            self.cancel_until(0);
        }
        result
    }

    /// The CDCL main loop (assumptions, if any, are in `self.assumptions`).
    fn search(&mut self, budget: Budget) -> SatResult {
        let restart_base = self.features.restart_base.max(1);
        let mut restart_idx = 0u64;
        let mut conflicts_until_restart = luby(restart_idx) * restart_base;
        let start_conflicts = self.stats.conflicts;
        // Deadline / interrupt polling is amortised over a counter of
        // propagations + conflicts so the hot loop never calls
        // `Instant::now()` more than once per POLL_INTERVAL events.
        let mut next_poll = self.stats.propagations + self.stats.conflicts + POLL_INTERVAL;

        loop {
            let polled_ops = self.stats.propagations + self.stats.conflicts;
            if polled_ops >= next_poll {
                next_poll = polled_ops + POLL_INTERVAL;
                if self.budget_exhausted(&budget) {
                    return SatResult::Unknown;
                }
                if self.bound_watch_fired() {
                    return SatResult::Unknown;
                }
                if self.over_mem_limit() {
                    // Memory watchdog: shed learnt clauses before giving
                    // up, then exit cleanly rather than grow unbounded.
                    self.cancel_until(0);
                    if self.n_learnt > 16 {
                        self.reduce_db();
                    }
                    if self.over_mem_limit() {
                        return SatResult::Unknown;
                    }
                    continue;
                }
            }
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                if self.decision_level() == 0 {
                    self.ok = false;
                    return SatResult::Unsat;
                }
                let (learnt, bt) = self.analyze(confl);
                let lbd = self.compute_lbd(&learnt);
                self.stats.learnt_clauses += 1;
                self.stats.lbd_total += u64::from(lbd);
                if let Some(p) = self.proof.as_mut() {
                    p.add(&learnt, ProofOrigin::Learnt);
                }
                self.cancel_until(bt);
                self.publish_learnt(&learnt, lbd);
                if learnt.len() == 1 {
                    self.enqueue(learnt[0], Reason::None);
                } else {
                    let asserting = learnt[0];
                    let cref = self.attach_clause(&learnt, true, lbd);
                    self.enqueue(asserting, Reason::Clause(cref));
                }
                conflicts_until_restart = conflicts_until_restart.saturating_sub(1);
                if let Some(limit) = budget.conflict_limit {
                    if self.stats.conflicts - start_conflicts >= limit {
                        return SatResult::Unknown;
                    }
                }
            } else {
                if conflicts_until_restart == 0 && self.features.restarts {
                    restart_idx += 1;
                    conflicts_until_restart = luby(restart_idx) * restart_base;
                    self.stats.restarts += 1;
                    self.cancel_until(0);
                    if !self.import_shared() {
                        return SatResult::Unsat;
                    }
                    if self.features.inprocessing && self.stats.conflicts >= self.next_inprocess {
                        self.next_inprocess =
                            self.stats.conflicts + self.features.inprocess_interval.max(1);
                        if !self.inprocess() {
                            return SatResult::Unsat;
                        }
                    }
                    if self.n_learnt > self.learnt_cap {
                        self.reduce_db();
                        self.learnt_cap += self.learnt_cap / 2;
                    }
                    continue;
                }
                // Establish pending assumptions before any real decision:
                // one per level, so the trail structure records exactly
                // which assumptions are in force.
                if (self.decision_level() as usize) < self.assumptions.len() {
                    let a = self.assumptions[self.decision_level() as usize];
                    if self.is_true(a) {
                        // Already implied: dedicate a dummy level to it so
                        // the level↔assumption correspondence holds.
                        self.trail_lim.push(self.trail.len());
                    } else if self.is_false(a) {
                        self.analyze_final(a);
                        return SatResult::Unsat;
                    } else {
                        self.trail_lim.push(self.trail.len());
                        self.enqueue(a, Reason::None);
                        self.stats.decisions += 1;
                    }
                    continue;
                }
                if !self.decide() {
                    return SatResult::Sat;
                }
            }
        }
    }

    /// Test-only deep consistency check of the arena, watch lists and
    /// packed assignment (used by the arena/GC stress suite). Expects a
    /// propagation fixpoint (not mid-`propagate`).
    #[doc(hidden)]
    pub fn debug_check_invariants(&self) -> Result<(), String> {
        // The arena walk must tile the buffer exactly, with no stray
        // relocation marks left behind by GC.
        let mut live: std::collections::HashMap<CRef, usize> = std::collections::HashMap::new();
        let mut r = 0u32;
        while (r as usize) < self.arena.data.len() {
            if self.arena.is_relocated(r) {
                return Err(format!("clause {r} left relocated outside GC"));
            }
            let len = self.arena.len(r);
            if len < 2 {
                return Err(format!("clause {r} has {len} literals"));
            }
            if !self.arena.is_deleted(r) {
                live.insert(r, 0);
            }
            r += HEADER_WORDS + len as u32;
        }
        if (r as usize) != self.arena.data.len() {
            return Err("arena walk overshoots the buffer".into());
        }
        // Every live clause is watched exactly twice, on the negations
        // of its first two literals, with a blocker from the clause.
        for (code, ws) in self.watches.iter().enumerate() {
            for w in ws {
                if self.arena.is_deleted(w.cref) {
                    continue; // stale watch, removed lazily
                }
                let Some(n) = live.get_mut(&w.cref) else {
                    return Err(format!("watch on unknown clause {}", w.cref));
                };
                *n += 1;
                let watched = !Lit(code as u32);
                if self.arena.lit(w.cref, 0) != watched && self.arena.lit(w.cref, 1) != watched {
                    return Err(format!("clause {} watched on a non-watch literal", w.cref));
                }
                if !self.arena.collect_lits(w.cref).contains(&w.blocker) {
                    return Err(format!("clause {} blocker outside the clause", w.cref));
                }
            }
        }
        for (r, n) in live {
            if n != 2 {
                return Err(format!("clause {r} has {n} watch entries, expected 2"));
            }
        }
        // The packed assignment and the trail must agree.
        let assigned = (0..self.num_vars)
            .filter(|&v| self.assign.get(v) != 2)
            .count();
        if assigned != self.trail.len() {
            return Err(format!(
                "{assigned} assigned vars but {} trail literals",
                self.trail.len()
            ));
        }
        for &l in &self.trail {
            if !self.is_true(l) {
                return Err(format!("trail literal {l:?} is not true"));
            }
        }
        Ok(())
    }

    /// Test-only: cancels to the root and runs one database reduction
    /// (including the compacting GC).
    #[doc(hidden)]
    pub fn debug_force_reduce(&mut self) {
        self.cancel_until(0);
        self.reduce_db();
    }

    /// Test-only: cancels to the root and runs one inprocessing pass;
    /// returns `false` if the database was proven unsatisfiable.
    #[doc(hidden)]
    pub fn debug_force_inprocess(&mut self) -> bool {
        self.cancel_until(0);
        if self.propagate().is_some() {
            self.ok = false;
            return false;
        }
        self.inprocess_with(true)
    }
}

/// The Luby restart sequence (1, 1, 2, 1, 1, 2, 4, ...), 0-indexed.
fn luby(i: u64) -> u64 {
    // Standard closed-form recursion on the 1-indexed sequence: if
    // n = 2^k - 1 the value is 2^(k-1); otherwise recurse on the tail.
    let mut n = i + 1;
    loop {
        let k = 64 - n.leading_zeros() as u64; // floor(log2(n)) + 1
        if n == (1u64 << k) - 1 {
            return 1u64 << (k - 1);
        }
        n -= (1u64 << (k - 1)) - 1;
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // column-index loops in incidence constructions
mod tests {
    use super::*;
    use crate::model::Model;
    use crate::normalize::normalize;

    fn engine_from(m: &Model) -> Engine {
        let mut e = Engine::new(m.num_vars());
        for c in m.constraints() {
            for nc in normalize(c) {
                e.add_norm(nc);
            }
        }
        e
    }

    #[test]
    fn luby_sequence() {
        let expect = [1u64, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8];
        let got: Vec<u64> = (0..expect.len() as u64).map(luby).collect();
        assert_eq!(got, expect);
    }

    #[test]
    fn trivial_sat() {
        let mut m = Model::new();
        let x = m.new_var();
        m.add_clause([x.lit()]);
        let mut e = engine_from(&m);
        assert_eq!(e.solve(Budget::unlimited()), SatResult::Sat);
        assert!(e.model_value(x));
    }

    #[test]
    fn trivial_unsat() {
        let mut m = Model::new();
        let x = m.new_var();
        m.add_clause([x.lit()]);
        m.add_clause([!x.lit()]);
        let mut e = engine_from(&m);
        assert_eq!(e.solve(Budget::unlimited()), SatResult::Unsat);
    }

    #[test]
    fn pigeonhole_3_into_2_unsat() {
        // 3 pigeons, 2 holes: each pigeon in >=1 hole, each hole <=1 pigeon.
        let mut m = Model::new();
        let p: Vec<Vec<_>> = (0..3).map(|_| m.new_vars(2)).collect();
        for row in &p {
            m.add_clause(row.iter().map(|v| v.lit()));
        }
        for h in 0..2 {
            m.add_at_most_one((0..3).map(|i| p[i][h]));
        }
        let mut e = engine_from(&m);
        assert_eq!(e.solve(Budget::unlimited()), SatResult::Unsat);
    }

    #[test]
    fn exactly_one_chain_sat() {
        let mut m = Model::new();
        let cells: Vec<Vec<_>> = (0..4).map(|_| m.new_vars(4)).collect();
        for row in &cells {
            m.add_exactly_one(row.iter().copied());
        }
        for c in 0..4 {
            m.add_at_most_one((0..4).map(|r| cells[r][c]));
        }
        let mut e = engine_from(&m);
        assert_eq!(e.solve(Budget::unlimited()), SatResult::Sat);
        // Verify it is a permutation matrix.
        for row in &cells {
            assert_eq!(row.iter().filter(|v| e.model_value(**v)).count(), 1);
        }
        for c in 0..4 {
            assert!((0..4).filter(|&r| e.model_value(cells[r][c])).count() <= 1);
        }
    }

    #[test]
    fn weighted_pb_propagation() {
        // 3a + 2b + 2c <= 4 with a forced true leaves slack 1: b, c forced false.
        let mut m = Model::new();
        let a = m.new_var();
        let b = m.new_var();
        let c = m.new_var();
        let mut e = LinExprHelper::expr(&[(3, a), (2, b), (2, c)]);
        m.add_le(std::mem::take(&mut e), 4);
        m.add_clause([a.lit()]);
        let mut eng = engine_from(&m);
        assert_eq!(eng.solve(Budget::unlimited()), SatResult::Sat);
        assert!(eng.model_value(a));
        assert!(!eng.model_value(b));
        assert!(!eng.model_value(c));
    }

    struct LinExprHelper;

    impl LinExprHelper {
        fn expr(terms: &[(i64, Var)]) -> crate::model::LinExpr {
            let mut e = crate::model::LinExpr::new();
            for &(c, v) in terms {
                e.add_term(c, v);
            }
            e
        }
    }

    #[test]
    fn conflict_limit_returns_unknown() {
        // A hard pigeonhole instance with a conflict budget of 1.
        let n = 8;
        let mut m = Model::new();
        let p: Vec<Vec<_>> = (0..n + 1).map(|_| m.new_vars(n)).collect();
        for row in &p {
            m.add_clause(row.iter().map(|v| v.lit()));
        }
        for h in 0..n {
            m.add_at_most_one((0..n + 1).map(|i| p[i][h]));
        }
        let mut e = engine_from(&m);
        let r = e.solve(Budget {
            deadline: None,
            conflict_limit: Some(1),
        });
        assert_eq!(r, SatResult::Unknown);
    }

    #[test]
    fn incremental_add_between_solves() {
        let mut m = Model::new();
        let vs = m.new_vars(3);
        m.add_ge(crate::model::LinExpr::sum(vs.clone()), 1);
        let mut e = engine_from(&m);
        assert_eq!(e.solve(Budget::unlimited()), SatResult::Sat);
        // Now force all false: unsat.
        e.cancel_until(0);
        for v in &vs {
            if !e.add_norm(NormConstraint::Unit(!v.lit())) {
                break;
            }
        }
        assert_eq!(e.solve(Budget::unlimited()), SatResult::Unsat);
    }

    // ---- arena / packed-array / inprocessing regression tests ----

    #[test]
    fn packed_vals_roundtrip() {
        let mut p = PackedVals::default();
        for _ in 0..100 {
            p.push_unassigned();
        }
        for v in 0..100 {
            assert_eq!(p.get(v), 2, "fresh var {v} not unassigned");
        }
        for v in 0..100 {
            p.set(v, (v % 2) as u8);
        }
        for v in 0..100 {
            assert_eq!(p.get(v), (v % 2) as u8);
        }
        p.set(50, 2);
        assert_eq!(p.get(50), 2);
        assert_eq!(p.get(49), 1);
        assert_eq!(p.get(51), 1);
    }

    #[test]
    fn bitvec_roundtrip() {
        let mut b = BitVec::default();
        for i in 0..130 {
            b.push(i % 3 == 0);
        }
        for i in 0..130 {
            assert_eq!(b.get(i), i % 3 == 0);
        }
        b.set(64, true);
        assert!(b.get(64));
        b.fill(false);
        assert!((0..130).all(|i| !b.get(i)));
    }

    #[test]
    fn arena_alloc_walk_and_delete() {
        let mut a = ClauseArena::default();
        let l = |i: u32| Lit::positive(Var(i));
        let c1 = a.alloc(&[l(0), l(1), l(2)], false, 0);
        let c2 = a.alloc(&[l(3), l(4)], true, 7);
        assert_eq!(a.len(c1), 3);
        assert_eq!(a.len(c2), 2);
        assert!(!a.is_learnt(c1));
        assert!(a.is_learnt(c2));
        assert_eq!(a.lbd(c2), 7);
        assert_eq!(a.collect_lits(c1), vec![l(0), l(1), l(2)]);
        assert_eq!(a.crefs(), vec![c1, c2]);
        a.mark_deleted(c1);
        assert!(a.is_deleted(c1));
        assert!(!a.is_deleted(c2));
        assert_eq!(a.wasted, HEADER_WORDS as usize + 3);
    }

    #[test]
    fn gc_preserves_solve_and_invariants() {
        let mut m = Model::new();
        let cells: Vec<Vec<_>> = (0..5).map(|_| m.new_vars(5)).collect();
        for row in &cells {
            m.add_exactly_one(row.iter().copied());
        }
        for c in 0..5 {
            m.add_at_most_one((0..5).map(|r| cells[r][c]));
        }
        let mut e = engine_from(&m);
        assert_eq!(e.solve(Budget::unlimited()), SatResult::Sat);
        e.debug_force_reduce();
        e.debug_check_invariants().unwrap();
        assert!(e.stats().gc_runs >= 1);
        assert_eq!(e.solve(Budget::unlimited()), SatResult::Sat);
        e.debug_check_invariants().unwrap();
    }

    #[test]
    fn mid_tier_clauses_age_out_under_pressure() {
        // Regression for the `deleted_mid: 0` pathology: under a steady
        // influx of fresh high-LBD locals, pure half-deletion ranked by
        // (lbd, activity) never reaches the mid tier. The age cutoff
        // must evict unused mids regardless of rank.
        let mut e = Engine::new(200);
        let l = |i: usize| Lit::positive(Var(i as u32));
        // A pool of mid-tier learnts (LBD 4) that are never bumped again.
        for i in 0..20 {
            let lits = [l(i * 3), l(i * 3 + 1), l(i * 3 + 2)];
            e.attach_clause(&lits, true, 4);
            e.n_learnt += 1;
        }
        // Rounds of fresh local learnts (LBD far above mid) followed by a
        // reduction — models the descent benches' conflict traffic.
        for round in 0..6 {
            for i in 0..30 {
                let base = 60 + ((round * 30 + i) * 4) % 130;
                let lits = [l(base), l(base + 1), l(base + 2), l(base + 3)];
                let c = e.attach_clause(&lits, true, 40);
                e.n_learnt += 1;
                e.bump_clause(c); // locals are active, mids are not
            }
            e.debug_force_reduce();
            e.debug_check_invariants().unwrap();
        }
        assert!(
            e.stats().deleted_mid > 0,
            "mid-tier clauses were never evicted: {:?}",
            e.stats()
        );
    }

    #[test]
    fn vivification_shortens_entailed_clause() {
        // x1 ∨ x2 is implied; the learnt (x1 ∨ x2 ∨ x3 ∨ x4) must shrink.
        let mut m = Model::new();
        let vs = m.new_vars(6);
        let x = |i: usize| vs[i].lit();
        m.add_clause([x(0), x(1), x(4)]);
        m.add_clause([x(0), x(1), !x(4)]);
        let mut e = engine_from(&m);
        let learnt = [x(0), x(1), x(2), x(3)];
        e.attach_clause(&learnt, true, 3);
        e.n_learnt += 1;
        assert!(e.debug_force_inprocess());
        assert!(
            e.stats().vivified_lits >= 2,
            "expected vivification to strip x3/x4: {:?}",
            e.stats()
        );
        e.debug_check_invariants().unwrap();
        assert_eq!(e.solve(Budget::unlimited()), SatResult::Sat);
    }

    #[test]
    fn subsumption_deletes_superset_learnt() {
        let mut e = Engine::new(10);
        let l = |i: usize| Lit::positive(Var(i as u32));
        e.attach_clause(&[l(0), l(1)], true, 2);
        e.n_learnt += 1;
        e.attach_clause(&[l(0), l(1), l(2)], true, 3);
        e.n_learnt += 1;
        assert!(e.debug_force_inprocess());
        assert!(
            e.stats().subsumed_clauses >= 1,
            "superset clause not subsumed: {:?}",
            e.stats()
        );
        e.debug_check_invariants().unwrap();
    }

    #[test]
    fn self_subsumption_strengthens() {
        // (a ∨ b) and (¬a ∨ b ∨ c): resolving strengthens the second
        // to (b ∨ c).
        let mut e = Engine::new(10);
        let l = |i: usize| Lit::positive(Var(i as u32));
        e.attach_clause(&[l(0), l(1)], true, 2);
        e.n_learnt += 1;
        e.attach_clause(&[!l(0), l(1), l(2)], true, 3);
        e.n_learnt += 1;
        assert!(e.debug_force_inprocess());
        assert!(
            e.stats().strengthened_lits >= 1,
            "no self-subsuming strengthening: {:?}",
            e.stats()
        );
        e.debug_check_invariants().unwrap();
    }

    #[test]
    fn inprocessing_preserves_verdicts() {
        // Pigeonhole with aggressive inprocessing stays Unsat; the chain
        // instance stays Sat.
        let mut m = Model::new();
        let p: Vec<Vec<_>> = (0..5).map(|_| m.new_vars(4)).collect();
        for row in &p {
            m.add_clause(row.iter().map(|v| v.lit()));
        }
        for h in 0..4 {
            m.add_at_most_one((0..5).map(|i| p[i][h]));
        }
        let mut e = engine_from(&m);
        e.set_features(EngineFeatures {
            restart_base: 1,
            inprocess_interval: 1,
            ..EngineFeatures::default()
        });
        assert_eq!(e.solve(Budget::unlimited()), SatResult::Unsat);
        assert!(
            e.stats().inprocessings > 0,
            "no inprocessing despite per-restart interval: {:?}",
            e.stats()
        );
    }
}
