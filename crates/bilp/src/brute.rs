//! Exhaustive reference solver, used to validate the CDCL engine on small
//! models (property tests cross-check every outcome).

use crate::model::{Model, Var};
use crate::solve::Assignment;

/// Result of [`solve_exhaustive`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BruteOutcome {
    /// The best (minimum-objective) satisfying assignment.
    Optimal {
        /// One optimal assignment (ties broken by enumeration order).
        solution: Assignment,
        /// The optimal objective value (0 when no objective is set).
        objective: i64,
    },
    /// No assignment satisfies the constraints.
    Infeasible,
}

impl BruteOutcome {
    /// The objective value, if feasible.
    pub fn objective(&self) -> Option<i64> {
        match self {
            BruteOutcome::Optimal { objective, .. } => Some(*objective),
            BruteOutcome::Infeasible => None,
        }
    }
}

/// Solves a model by enumerating all `2^n` assignments.
///
/// # Panics
///
/// Panics if the model has more than 24 variables (the enumeration would
/// be too slow to be useful).
pub fn solve_exhaustive(model: &Model) -> BruteOutcome {
    let n = model.num_vars();
    assert!(n <= 24, "exhaustive solving limited to 24 variables");
    let mut best: Option<(u64, i64)> = None;
    for bits in 0..(1u64 << n) {
        let value = |v: Var| bits >> v.index() & 1 == 1;
        if model.check(value).is_err() {
            continue;
        }
        let obj = model.objective().map(|o| o.evaluate(value)).unwrap_or(0);
        match best {
            Some((_, b)) if b <= obj => {}
            _ => best = Some((bits, obj)),
        }
        if model.objective().is_none() {
            break; // any satisfying assignment is enough
        }
    }
    match best {
        Some((bits, objective)) => BruteOutcome::Optimal {
            solution: assignment_from_bits(n, bits),
            objective,
        },
        None => BruteOutcome::Infeasible,
    }
}

fn assignment_from_bits(n: usize, bits: u64) -> Assignment {
    let mut m = Model::new();
    let vars = m.new_vars(n);
    // Assignment has no public constructor; synthesise via trues() of a
    // trivially solved model would be overkill. Instead we rebuild through
    // the crate-private constructor below.
    let values = vars
        .iter()
        .map(|v| bits >> v.index() & 1 == 1)
        .collect::<Vec<_>>();
    Assignment::from_values(values)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::LinExpr;

    #[test]
    fn brute_matches_hand_computation() {
        let mut m = Model::new();
        let a = m.new_var();
        let b = m.new_var();
        m.add_clause([a.lit(), b.lit()]);
        let mut obj = LinExpr::new();
        obj.add_term(2, a);
        obj.add_term(3, b);
        m.minimize(obj);
        assert_eq!(solve_exhaustive(&m).objective(), Some(2));
    }

    #[test]
    fn brute_detects_infeasible() {
        let mut m = Model::new();
        let a = m.new_var();
        m.fix(a, true);
        m.fix(a, false);
        assert_eq!(solve_exhaustive(&m), BruteOutcome::Infeasible);
    }
}
