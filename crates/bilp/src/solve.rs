//! The public solving interface: feasibility and branch-and-bound
//! optimisation on top of the CDCL engine.
//!
//! Optimisation is an **incremental assumption-based descent**: one
//! persistent engine holds the model; each incumbent's strengthened bound
//! `obj <= val - 1` is added *reified* under a fresh activation literal
//! and probed by assuming the activation chain, never as a permanent
//! constraint. Every clause the engine learns therefore remains valid for
//! the whole descent (and for later queries with different assumption
//! sets), which is the main solver-side lever on the repeated,
//! nearly-identical queries of the CGRA min-II ladder.
//! [`IncrementalSolver`] exposes the persistent engine directly;
//! [`Solver`] keeps the one-shot interface on top of it.

use crate::checker::{self, CheckOutcome};
use crate::engine::{Budget, Engine, EngineFeatures, EngineStats, SatResult};
use crate::model::{Cmp, Constraint, LinExpr, Lit, Model, Var};
use crate::normalize::{normalize, NormConstraint};
use crate::presolve::{
    presolve, LitDisposition, PresolveConfig, PresolveStats, Presolved, Reconstruction,
};
use crate::proof::{Certificate, ProofLog, ProofOrigin};
use std::sync::atomic::AtomicBool;
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A cheap randomized feasibility heuristic raced against the exact
/// engines as a first-class incumbent source (see
/// [`Solver::solve_with_probe`]).
///
/// With `threads > 1` the portfolio runs [`SolverConfig::probe_workers`]
/// dedicated probe threads alongside the CDCL workers; every candidate a
/// probe publishes is re-validated against the model and, if valid,
/// becomes a shared incumbent whose objective value bounds every engine
/// mid-solve. With `threads = 1` a single synchronous probe attempt
/// seeds the descent before search starts.
///
/// Probes are **advisory only**: an invalid candidate is discarded (the
/// solver never trusts one unchecked), and a probe can never cause an
/// `Infeasible` or flip any decided verdict — it can only supply
/// solutions earlier.
pub trait HeuristicProbe: Send + Sync {
    /// Runs one probe attempt. `seed` diversifies randomized heuristics
    /// (each attempt receives a distinct value); implementations should
    /// poll `stop` and bail out early once it is set.
    ///
    /// Returns a *candidate* assignment over the model's variables
    /// (`values[i]` is the value of variable `i`), or `None` when this
    /// source has nothing more to offer — a probe worker thread stops
    /// permanently on `None`.
    fn probe(&self, seed: u64, stop: &AtomicBool) -> Option<Vec<bool>>;
}

/// Where the solution backing an outcome was first discovered.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IncumbentSource {
    /// A CDCL engine found it (sequential descent or a portfolio worker).
    Solver,
    /// A [`HeuristicProbe`] published it and validation accepted it.
    Heuristic,
}

/// Solver configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverConfig {
    /// Wall-clock limit for the whole solve (feasibility + optimisation).
    pub time_limit: Option<Duration>,
    /// Conflict limit per engine search (mainly for tests).
    pub conflict_limit: Option<u64>,
    /// Target objective value: the optimising descent stops as soon as it
    /// holds an incumbent with objective `<= objective_stop`, reporting it
    /// as [`Outcome::Feasible`] best-found instead of descending to the
    /// proven optimum — the "best-objective stop" criterion of MIP
    /// solvers. Useful for time-to-reference-quality measurements.
    /// `None` (the default) descends until optimality is proven.
    pub objective_stop: Option<i64>,
    /// Engine feature toggles (ablation studies; default all enabled).
    pub features: EngineFeatures,
    /// Number of portfolio workers: `1` (the default) solves on the
    /// calling thread exactly as before; `0` means "one per available
    /// core"; `n > 1` races `n` diversified engines (see
    /// [`crate::portfolio`]).
    pub threads: usize,
    /// Base seed for engine diversification (worker seeds derive from
    /// it). With `threads = 1` the seed only matters if
    /// `features.random_tiebreak` is enabled.
    pub seed: u64,
    /// Run the presolve pipeline before search (see [`crate::presolve`]).
    /// When `false`, solving follows the exact pre-presolve code path.
    /// Defaults to the `BILP_PRESOLVE` environment variable, or `true`.
    pub presolve: bool,
    /// Propagation-step budget for failed-literal probing inside presolve;
    /// `0` disables probing (the cheap passes still run).
    pub presolve_probe_budget: u64,
    /// Certify `Infeasible` verdicts: replay the solve with proof logging
    /// and have the independent RUP checker ([`crate::checker`]) re-derive
    /// the contradiction. The resulting [`Certificate`] is available from
    /// [`Solver::certificate`] / [`IncrementalSolver::certificate`]. The
    /// replay gets a fresh `time_limit` budget of its own, so certified
    /// infeasible solves can take up to twice the configured limit.
    pub certify: bool,
    /// Approximate byte cap on each engine's learnt database plus proof
    /// log. Exceeding it triggers an emergency clause-database reduction
    /// and, failing that, a clean best-found/`Unknown` exit instead of
    /// unbounded growth. `None` (the default) disables the watchdog
    /// (proof logs still default to [`ProofLog::DEFAULT_CAP`]). Portfolio
    /// workers split the cap evenly.
    pub mem_limit: Option<usize>,
    /// Number of heuristic-probe threads the portfolio races alongside
    /// the CDCL workers when a probe is supplied via
    /// [`Solver::solve_with_probe`] and `threads > 1`. `0` (the default)
    /// still runs one probe thread when a probe is supplied — the knob
    /// only scales the count. Ignored when no probe is supplied; with
    /// `threads = 1` the probe runs once synchronously instead.
    pub probe_workers: usize,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            time_limit: None,
            conflict_limit: None,
            objective_stop: None,
            features: EngineFeatures::default(),
            threads: 1,
            seed: 0,
            presolve: presolve_from_env().unwrap_or(true),
            presolve_probe_budget: PresolveConfig::default().probe_budget,
            certify: false,
            mem_limit: None,
            probe_workers: 0,
        }
    }
}

impl SolverConfig {
    /// The worker count this configuration resolves to: `threads`, with
    /// `0` mapped to the machine's available parallelism.
    pub fn effective_threads(&self) -> usize {
        match self.threads {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
    }
}

/// Reads the `BILP_THREADS` environment variable: the conventional way
/// for binaries and examples in this repository to default their
/// `--threads` flag. Unset, empty or unparsable values yield `None`;
/// `0` means "all cores" (see [`SolverConfig::threads`]).
pub fn threads_from_env() -> Option<usize> {
    std::env::var("BILP_THREADS").ok()?.trim().parse().ok()
}

/// Reads the `BILP_PRESOLVE` environment variable: the escape hatch for
/// disabling presolve globally. `0`, `off`, `false` and `no` disable it;
/// any other non-empty value enables it; unset/empty yields `None`.
pub fn presolve_from_env() -> Option<bool> {
    let v = std::env::var("BILP_PRESOLVE").ok()?;
    match v.trim() {
        "" => None,
        "0" | "off" | "false" | "no" => Some(false),
        _ => Some(true),
    }
}

/// A complete 0/1 assignment to the model's variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    values: Vec<bool>,
}

impl Assignment {
    pub(crate) fn from_values(values: Vec<bool>) -> Self {
        Assignment { values }
    }

    /// The value assigned to `var`.
    pub fn value(&self, var: Var) -> bool {
        self.values[var.index()]
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the assignment covers zero variables.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over the variables assigned `true`.
    pub fn trues(&self) -> impl Iterator<Item = Var> + '_ {
        self.values
            .iter()
            .enumerate()
            .filter(|&(_, v)| *v)
            .map(|(i, _)| Var(i as u32))
    }
}

/// Result of [`Solver::solve`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// A provably optimal solution (for pure feasibility problems, any
    /// satisfying solution is optimal with objective 0).
    Optimal {
        /// The optimal assignment.
        solution: Assignment,
        /// Objective value of the solution.
        objective: i64,
    },
    /// The budget expired with an incumbent whose optimality is unproven.
    Feasible {
        /// The best assignment found.
        solution: Assignment,
        /// Objective value of the incumbent.
        objective: i64,
    },
    /// The model is provably infeasible.
    Infeasible,
    /// The budget expired before feasibility could be decided. This is how
    /// the paper's Table 2 `T` entries manifest.
    Unknown,
}

impl Outcome {
    /// The solution, if any.
    pub fn solution(&self) -> Option<&Assignment> {
        match self {
            Outcome::Optimal { solution, .. } | Outcome::Feasible { solution, .. } => {
                Some(solution)
            }
            _ => None,
        }
    }

    /// The objective value, if a solution exists.
    pub fn objective(&self) -> Option<i64> {
        match self {
            Outcome::Optimal { objective, .. } | Outcome::Feasible { objective, .. } => {
                Some(*objective)
            }
            _ => None,
        }
    }

    /// Whether feasibility was decided (either way) within budget.
    pub fn is_decided(&self) -> bool {
        !matches!(self, Outcome::Unknown)
    }
}

/// Solve statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolveStats {
    /// Engine statistics accumulated over all branch-and-bound rounds
    /// (summed across every portfolio worker when `threads > 1`).
    pub engine: EngineStats,
    /// Number of incumbent solutions found during optimisation.
    pub incumbents: u64,
    /// Total wall-clock time.
    pub elapsed: Duration,
    /// Number of portfolio workers that ran (1 for the sequential path).
    pub workers: u32,
    /// Index of the first worker that produced a decisive verdict, when
    /// the portfolio ran.
    pub winner: Option<u32>,
    /// Presolve reduction counters (all zero when presolve is disabled).
    pub presolve: PresolveStats,
    /// Number of portfolio workers that panicked and were quarantined
    /// (their partial state dropped; the race continued without them).
    pub worker_panics: u32,
    /// Number of heuristic-probe workers that ran (0 when no probe was
    /// supplied; 1 for the sequential synchronous attempt).
    pub probe_workers: u32,
    /// Validated heuristic incumbents accepted from probes (each one
    /// passed the full model check before being recorded).
    pub probe_incumbents: u64,
    /// Times a CDCL worker consumed a globally improved incumbent bound
    /// mid-solve: woken by the engine's bound watch, it re-entered the
    /// search with a strictly tighter permanent bound constraint.
    pub bound_tightenings: u64,
    /// Origin of the solution backing the most recent outcome, when
    /// there is one.
    pub incumbent_source: Option<IncumbentSource>,
}

/// The 0-1 ILP solver.
///
/// # Examples
///
/// ```
/// use bilp::{LinExpr, Model, Outcome, Solver};
/// let mut m = Model::new();
/// let vs = m.new_vars(4);
/// m.add_ge(LinExpr::sum(vs.clone()), 2);
/// m.minimize(LinExpr::sum(vs.clone()));
/// let outcome = Solver::new().solve(&m);
/// assert_eq!(outcome.objective(), Some(2));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Solver {
    config: SolverConfig,
    stats: SolveStats,
    last_core: Vec<Lit>,
    certificate: Option<Certificate>,
    /// External cooperative-cancellation flag (see
    /// [`Solver::set_interrupt`]). Kept out of [`SolverConfig`] so the
    /// config stays `Copy`.
    interrupt: Option<Arc<AtomicBool>>,
}

impl Solver {
    /// Creates a solver with an unlimited budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a solver with the given configuration.
    pub fn with_config(config: SolverConfig) -> Self {
        Solver {
            config,
            stats: SolveStats::default(),
            last_core: Vec::new(),
            certificate: None,
            interrupt: None,
        }
    }

    /// Installs an external cooperative-cancellation flag. When another
    /// thread sets it, every engine this solver runs — sequential or
    /// portfolio — returns [`Outcome::Unknown`] at its next budget poll
    /// (or [`Outcome::Feasible`] best-found if the descent already holds
    /// an incumbent). This is how a serving layer implements graceful
    /// shutdown and admission-control rejection of in-flight work
    /// without killing threads.
    pub fn set_interrupt(&mut self, flag: Arc<AtomicBool>) {
        self.interrupt = Some(flag);
    }

    /// Statistics of the most recent [`Solver::solve`] call.
    pub fn stats(&self) -> SolveStats {
        self.stats
    }

    /// The trust status of the most recent `Infeasible` verdict. Present
    /// only when [`SolverConfig::certify`] is set and the last solve
    /// returned [`Outcome::Infeasible`].
    pub fn certificate(&self) -> Option<&Certificate> {
        self.certificate.as_ref()
    }

    /// After [`Solver::solve_under_assumptions`] returned
    /// [`Outcome::Infeasible`], the subset of the assumptions (in the
    /// original model's literals) that the refutation depends on. Empty
    /// when the model is infeasible on its own.
    pub fn unsat_core(&self) -> &[Lit] {
        &self.last_core
    }

    /// Solves the model with every literal in `assumptions` held true,
    /// without making them part of the model: the verdict and objective
    /// are exactly those of solving `model` with each assumption added as
    /// a unit constraint, but on [`Outcome::Infeasible`] caused by the
    /// assumptions, [`Solver::unsat_core`] names a responsible subset.
    ///
    /// Assumption solving runs on the sequential engine regardless of
    /// `config.threads` (the portfolio races independent engines and has
    /// no shared assumption trail).
    pub fn solve_under_assumptions(&mut self, model: &Model, assumptions: &[Lit]) -> Outcome {
        self.certificate = None;
        let start = Instant::now();
        let mut facts = Vec::new();
        let out = self.solve_under_assumptions_inner(model, assumptions, &mut facts);
        if self.config.certify && out == Outcome::Infeasible {
            self.certificate = Some(certify_infeasibility(
                model,
                assumptions,
                &facts,
                &self.config,
            ));
            self.stats.elapsed = start.elapsed();
        }
        out
    }

    fn solve_under_assumptions_inner(
        &mut self,
        model: &Model,
        assumptions: &[Lit],
        facts: &mut Vec<Lit>,
    ) -> Outcome {
        self.stats = SolveStats::default();
        self.last_core.clear();
        let start = Instant::now();
        let deadline = self.config.time_limit.map(|d| start + d);
        self.stats.workers = 1;
        if !self.config.presolve {
            let assoc: Vec<(Lit, Lit)> = assumptions.iter().map(|&a| (a, a)).collect();
            return self.solve_assumed_reduced(model, assumptions, &assoc, start, deadline);
        }
        let pcfg = PresolveConfig {
            probe_budget: self.config.presolve_probe_budget,
            deadline,
            ..PresolveConfig::default()
        };
        match presolve(model, &pcfg) {
            Presolved::Infeasible { stats } => {
                self.stats.presolve = stats;
                self.stats.elapsed = start.elapsed();
                // The model is infeasible without any assumption's help.
                Outcome::Infeasible
            }
            Presolved::Reduced {
                model: red,
                reconstruction,
                stats,
            } => {
                self.stats.presolve = stats;
                if self.config.certify {
                    *facts = presolve_fixed_lits(&reconstruction, model.num_vars());
                }
                let mut mapped = Vec::with_capacity(assumptions.len());
                let mut assoc = Vec::with_capacity(assumptions.len());
                for &a in assumptions {
                    match reconstruction.map_lit(a) {
                        // Already implied by the model — or a don't-care
                        // elimination whose picked value agrees with the
                        // assumption (the expansion witnesses it): drop.
                        LitDisposition::Fixed(true) | LitDisposition::Free(true) => {}
                        // Refuted by the model alone: a one-literal core.
                        LitDisposition::Fixed(false) => {
                            self.last_core = vec![a];
                            self.stats.elapsed = start.elapsed();
                            return Outcome::Infeasible;
                        }
                        // The assumption contradicts a value presolve
                        // merely *chose* for an eliminated variable; the
                        // reduced model cannot answer for it. Solve the
                        // original model without presolve instead.
                        LitDisposition::Free(false) => {
                            let identity: Vec<(Lit, Lit)> =
                                assumptions.iter().map(|&l| (l, l)).collect();
                            return self.solve_assumed_reduced(
                                model,
                                assumptions,
                                &identity,
                                start,
                                deadline,
                            );
                        }
                        LitDisposition::Mapped(rl) => {
                            mapped.push(rl);
                            assoc.push((rl, a));
                        }
                    }
                }
                let out = self.solve_assumed_reduced(&red, &mapped, &assoc, start, deadline);
                self.stats.elapsed = start.elapsed();
                Self::expand_outcome(out, &reconstruction, model)
            }
        }
    }

    /// Assumption solve on an already-reduced model. `assoc` maps reduced
    /// assumption literals back to the caller's originals for the core.
    fn solve_assumed_reduced(
        &mut self,
        model: &Model,
        assumptions: &[Lit],
        assoc: &[(Lit, Lit)],
        start: Instant,
        deadline: Option<Instant>,
    ) -> Outcome {
        self.stats.workers = 1;
        let mut descent = match Descent::build(model, self.config.features, self.config.mem_limit) {
            Ok(d) => d,
            Err(stats) => {
                self.stats.engine = *stats;
                self.stats.elapsed = start.elapsed();
                return Outcome::Infeasible;
            }
        };
        if let Some(flag) = &self.interrupt {
            descent.engine.set_interrupt(Arc::clone(flag));
        }
        let budget = Budget {
            deadline,
            conflict_limit: self.config.conflict_limit,
        };
        let mut core = Vec::new();
        let out = descent.optimize(
            model,
            budget,
            assumptions,
            self.config.objective_stop,
            &mut self.stats.incumbents,
            &mut core,
        );
        if out.solution().is_some() {
            self.stats.incumbent_source = Some(descent.best_source);
        }
        self.stats.engine = descent.engine.stats();
        self.stats.elapsed = start.elapsed();
        self.last_core = core
            .iter()
            .filter_map(|rl| assoc.iter().find(|(r, _)| r == rl).map(|&(_, a)| a))
            .collect();
        out
    }

    /// Solves the model: pure feasibility when no objective is set,
    /// branch-and-bound minimisation otherwise.
    ///
    /// Returned solutions always satisfy every model constraint (this is
    /// re-checked internally; see [`Model::check`]).
    pub fn solve(&mut self, model: &Model) -> Outcome {
        self.solve_probed(model, None)
    }

    /// Solves the model with a heuristic incumbent source racing the
    /// exact engines (see [`HeuristicProbe`]). Verdicts and optima are
    /// exactly those of [`Solver::solve`] — probes only supply validated
    /// solutions (and hence objective upper bounds) earlier; they can
    /// never prove infeasibility or flip a decided verdict.
    pub fn solve_with_probe(&mut self, model: &Model, probe: &dyn HeuristicProbe) -> Outcome {
        self.solve_probed(model, Some(probe))
    }

    fn solve_probed(&mut self, model: &Model, probe: Option<&dyn HeuristicProbe>) -> Outcome {
        self.certificate = None;
        let start = Instant::now();
        let mut facts = Vec::new();
        let out = self.solve_inner(model, probe, &mut facts);
        if self.config.certify && out == Outcome::Infeasible {
            self.certificate = Some(certify_infeasibility(model, &[], &facts, &self.config));
            self.stats.elapsed = start.elapsed();
        }
        out
    }

    fn solve_inner(
        &mut self,
        model: &Model,
        probe: Option<&dyn HeuristicProbe>,
        facts: &mut Vec<Lit>,
    ) -> Outcome {
        self.stats = SolveStats::default();
        let start = Instant::now();
        // One absolute deadline covers presolve *and* search, so a long
        // probe pass eats into — never extends — the solve budget.
        let deadline = self.config.time_limit.map(|d| start + d);
        if !self.config.presolve {
            return self.solve_reduced(model, probe, start, deadline);
        }
        let pcfg = PresolveConfig {
            probe_budget: self.config.presolve_probe_budget,
            deadline,
            ..PresolveConfig::default()
        };
        match presolve(model, &pcfg) {
            Presolved::Infeasible { stats } => {
                self.stats.presolve = stats;
                self.stats.workers = 1;
                self.stats.elapsed = start.elapsed();
                Outcome::Infeasible
            }
            Presolved::Reduced {
                model: red,
                reconstruction,
                stats,
            } => {
                self.stats.presolve = stats;
                if self.config.certify {
                    *facts = presolve_fixed_lits(&reconstruction, model.num_vars());
                }
                // Probes speak the original model's variable space; the
                // engines search the reduced one. The adapter translates
                // every candidate through the reconstruction.
                let reduced_probe = probe.map(|p| ReducedProbe {
                    inner: p,
                    recon: &reconstruction,
                    reduced_vars: red.num_vars(),
                });
                let out = self.solve_reduced(
                    &red,
                    reduced_probe.as_ref().map(|p| p as &dyn HeuristicProbe),
                    start,
                    deadline,
                );
                self.stats.elapsed = start.elapsed();
                Self::expand_outcome(out, &reconstruction, model)
            }
        }
    }

    /// Maps an outcome on the reduced model back to original variables.
    fn expand_outcome(out: Outcome, recon: &Reconstruction, original: &Model) -> Outcome {
        let expand = |solution: &Assignment| {
            let full = recon.expand(solution);
            debug_assert_eq!(original.check(|v| full.value(v)), Ok(()));
            full
        };
        match out {
            Outcome::Optimal {
                solution,
                objective,
            } => Outcome::Optimal {
                solution: expand(&solution),
                objective,
            },
            Outcome::Feasible {
                solution,
                objective,
            } => Outcome::Feasible {
                solution: expand(&solution),
                objective,
            },
            other => other,
        }
    }

    /// Solves `model` as-is (no presolve): the sequential engine or the
    /// portfolio, charged against an absolute deadline.
    fn solve_reduced(
        &mut self,
        model: &Model,
        probe: Option<&dyn HeuristicProbe>,
        start: Instant,
        deadline: Option<Instant>,
    ) -> Outcome {
        let threads = self.config.effective_threads();
        if threads > 1 {
            let out = crate::portfolio::solve_portfolio(
                model,
                &self.config,
                threads,
                probe,
                &mut self.stats,
                deadline,
                self.interrupt.as_ref(),
            );
            self.stats.elapsed = start.elapsed();
            return out;
        }
        self.stats.workers = 1;

        let mut descent = match Descent::build(model, self.config.features, self.config.mem_limit) {
            Ok(d) => d,
            Err(stats) => {
                self.stats.elapsed = start.elapsed();
                self.stats.engine = *stats;
                return Outcome::Infeasible;
            }
        };
        if let Some(flag) = &self.interrupt {
            descent.engine.set_interrupt(Arc::clone(flag));
        }
        // Sequential flavour of heuristic seeding: one synchronous probe
        // attempt before the search. A validated candidate decides pure
        // feasibility outright; with an objective it seeds the descent's
        // incumbent, so the first bound posted is already below a real
        // solution instead of being discovered from above.
        if let Some(p) = probe {
            self.stats.probe_workers = 1;
            let stop = AtomicBool::new(false);
            if let Some((solution, val)) = validated_probe(model, p, self.config.seed, &stop) {
                self.stats.probe_incumbents += 1;
                if descent.objective.is_none() {
                    self.stats.incumbent_source = Some(IncumbentSource::Heuristic);
                    self.stats.engine = descent.engine.stats();
                    self.stats.elapsed = start.elapsed();
                    return Outcome::Optimal {
                        solution,
                        objective: 0,
                    };
                }
                descent.seed(solution, val);
            }
        }
        let budget = Budget {
            deadline,
            conflict_limit: self.config.conflict_limit,
        };
        let mut core = Vec::new();
        let out = descent.optimize(
            model,
            budget,
            &[],
            self.config.objective_stop,
            &mut self.stats.incumbents,
            &mut core,
        );
        if out.solution().is_some() {
            self.stats.incumbent_source = Some(descent.best_source);
        }
        self.stats.engine = descent.engine.stats();
        self.stats.elapsed = start.elapsed();
        out
    }
}

/// Runs one probe attempt and validates the candidate against `model`:
/// exact variable count and every constraint satisfied. Returns the
/// assignment together with its (normalised) objective value — `0` for
/// pure feasibility models.
pub(crate) fn validated_probe(
    model: &Model,
    probe: &dyn HeuristicProbe,
    seed: u64,
    stop: &AtomicBool,
) -> Option<(Assignment, i64)> {
    let values = probe.probe(seed, stop)?;
    if values.len() != model.num_vars() {
        return None;
    }
    let solution = Assignment::from_values(values);
    if model.check(|v| solution.value(v)).is_err() {
        return None;
    }
    let val = model
        .objective()
        .map(|o| o.normalized().evaluate(|v| solution.value(v)))
        .unwrap_or(0);
    Some((solution, val))
}

/// Adapts an original-model-space [`HeuristicProbe`] to the
/// presolve-reduced space the engines search: every candidate is
/// translated through [`Reconstruction::restrict`].
struct ReducedProbe<'a> {
    inner: &'a dyn HeuristicProbe,
    recon: &'a Reconstruction,
    reduced_vars: usize,
}

impl HeuristicProbe for ReducedProbe<'_> {
    fn probe(&self, seed: u64, stop: &AtomicBool) -> Option<Vec<bool>> {
        let original = self.inner.probe(seed, stop)?;
        match self.recon.restrict(&original, self.reduced_vars) {
            Some(reduced) => Some(reduced),
            // Untranslatable candidates violate the original model. An
            // empty vector is a well-formed but never-valid candidate:
            // the consumer's validation discards it and — unlike `None`,
            // which retires the probe source — keeps probing.
            None => Some(Vec::new()),
        }
    }
}

/// A persistent engine holding one model, descended towards the optimum by
/// assumption-probed reified objective bounds.
///
/// Every incumbent's strengthened bound `obj <= val - 1` is added under a
/// fresh activation literal and enforced by *assuming* that literal, never
/// as a permanent constraint. The engine's clause database therefore stays
/// valid for the unbounded model, so learnt clauses survive across
/// feasibility probes, the whole objective descent, and later queries with
/// different assumption sets.
#[derive(Debug)]
struct Descent {
    engine: Engine,
    /// Normalised objective, if the model has one.
    objective: Option<LinExpr>,
    /// Number of *model* variables; the engine may hold more (activation
    /// variables for reified bounds), which never leak into solutions.
    num_vars: usize,
    /// Activation literal of the tightest objective bound posted so far.
    /// Older (weaker) bounds stay in the database unactivated — sound, and
    /// implied by the newest bound anyway.
    bound_act: Option<Lit>,
    /// Right-hand side enforced when `bound_act` is assumed.
    bounded: Option<i64>,
    /// Best global incumbent (found without external assumptions), kept
    /// across calls so a feasibility solution seeds the later descent.
    best: Option<(Assignment, i64)>,
    /// Where `best` came from. Meaningless while `best` is `None`.
    best_source: IncumbentSource,
}

impl Descent {
    /// Loads the model into a fresh engine. `Err` carries the engine stats
    /// when a constraint is already refuted at the root.
    fn build(
        model: &Model,
        features: EngineFeatures,
        mem_limit: Option<usize>,
    ) -> Result<Descent, Box<EngineStats>> {
        let mut engine = Engine::new(model.num_vars());
        engine.set_features(features);
        if let Some(bytes) = mem_limit {
            engine.set_mem_limit(bytes);
        }
        for &(var, priority, phase) in model.branch_hints() {
            engine.set_branch_hint(var, priority, phase);
        }
        for c in model.constraints() {
            for nc in normalize(c) {
                if !engine.add_norm(nc) {
                    return Err(Box::new(engine.stats()));
                }
            }
        }
        Ok(Descent {
            engine,
            objective: model.objective().map(LinExpr::normalized),
            num_vars: model.num_vars(),
            bound_act: None,
            bounded: None,
            best: None,
            best_source: IncumbentSource::Solver,
        })
    }

    /// Seeds the incumbent from an externally *validated* solution (a
    /// heuristic probe's candidate after it passed the model check). The
    /// descent records it exactly like a solver-found incumbent, so the
    /// next `optimize` call starts strictly below it. Returns whether
    /// the seed improved on the current best.
    fn seed(&mut self, solution: Assignment, objective: i64) -> bool {
        if self.best.as_ref().is_none_or(|&(_, b)| objective < b) {
            self.best = Some((solution, objective));
            self.best_source = IncumbentSource::Heuristic;
            true
        } else {
            false
        }
    }

    /// Posts `objective <= rhs` reified under a fresh activation literal
    /// `act` (the constraint bites only while `act` is assumed) and
    /// returns `act`.
    fn post_bound(&mut self, rhs: i64) -> Lit {
        let act = self.engine.add_var().lit();
        let obj = self
            .objective
            .as_ref()
            .expect("bound requires an objective");
        let bound = Constraint {
            expr: obj.clone(),
            cmp: Cmp::Le,
            rhs,
        };
        for nc in normalize(&bound) {
            let reified = match nc {
                NormConstraint::Unit(l) => NormConstraint::Clause(vec![l, !act]),
                NormConstraint::Clause(mut c) => {
                    c.push(!act);
                    NormConstraint::Clause(c)
                }
                NormConstraint::False => NormConstraint::Clause(vec![!act]),
                NormConstraint::AtMost { mut terms, bound } => {
                    // act -> (sum <= bound) as sum + slack·act <= bound + slack
                    // with slack = total - bound: act true restores the
                    // original bound, act false relaxes it to `total`.
                    let total: u128 = terms.iter().map(|&(a, _)| u128::from(a)).sum();
                    let slack = u64::try_from(total - u128::from(bound))
                        .expect("normalised at-most slack fits u64");
                    terms.push((slack, act));
                    NormConstraint::AtMost {
                        terms,
                        bound: bound + slack,
                    }
                }
            };
            // Reified constraints cannot be refuted at the root: `act` is
            // fresh, so every emitted clause has an unassigned literal and
            // every at-most keeps slack `total - bound > 0` with act free.
            let ok = self.engine.add_norm(reified);
            debug_assert!(ok, "reified bound refuted at root");
        }
        act
    }

    /// Snapshot of the engine's current satisfying assignment, restricted
    /// to model variables.
    fn solution(&self, model: &Model) -> Assignment {
        let solution = Assignment {
            values: (0..self.num_vars)
                .map(|i| self.engine.model_value(Var(i as u32)))
                .collect(),
        };
        debug_assert_eq!(model.check(|v| solution.value(v)), Ok(()));
        solution
    }

    /// One feasibility solve under `assumptions` (the objective-bound
    /// chain is deliberately *not* assumed: the probe answers for the
    /// unbounded model). On `Unsat`, `core` receives the engine's final
    /// conflict. Incumbents are recorded only when `assumptions` is empty,
    /// keeping the seeded descent's first bound an unassumed discovery.
    fn feasible(
        &mut self,
        model: &Model,
        budget: Budget,
        assumptions: &[Lit],
        core: &mut Vec<Lit>,
    ) -> Outcome {
        core.clear();
        match self.engine.solve_under_assumptions(budget, assumptions) {
            SatResult::Unsat => {
                core.extend_from_slice(self.engine.unsat_core());
                Outcome::Infeasible
            }
            SatResult::Unknown => Outcome::Unknown,
            SatResult::Sat => {
                let solution = self.solution(model);
                let Some(obj) = &self.objective else {
                    if assumptions.is_empty() {
                        self.best = Some((solution.clone(), 0));
                        self.best_source = IncumbentSource::Solver;
                    }
                    return Outcome::Optimal {
                        solution,
                        objective: 0,
                    };
                };
                let val = obj.evaluate(|v| solution.value(v));
                if assumptions.is_empty() && self.best.as_ref().is_none_or(|&(_, b)| val < b) {
                    self.best = Some((solution.clone(), val));
                    self.best_source = IncumbentSource::Solver;
                }
                Outcome::Feasible {
                    solution,
                    objective: val,
                }
            }
        }
    }

    /// Branch-and-bound descent to the optimum under `assumptions`,
    /// assuming the objective-bound chain throughout. On an undecided
    /// first probe (`Unknown` with no incumbent yet), `core` stays empty;
    /// on `Infeasible` it receives the engine's final conflict. A `stop`
    /// target ends the descent early (`Feasible`) as soon as an incumbent
    /// reaches it ([`SolverConfig::objective_stop`]).
    ///
    /// Incumbents found under assumptions are still model solutions (the
    /// assumptions only restrict), so recording them and bounding below
    /// them stays sound for later unassumed calls; only the `Optimal`
    /// verdict itself is relative to the given assumptions.
    fn optimize(
        &mut self,
        model: &Model,
        budget: Budget,
        assumptions: &[Lit],
        stop: Option<i64>,
        incumbents: &mut u64,
        core: &mut Vec<Lit>,
    ) -> Outcome {
        core.clear();
        // Target-objective stop: an incumbent already at or below `stop`
        // is good enough — report it without descending further.
        if let (Some(s), Some((solution, val))) = (stop, self.best.clone()) {
            if self.objective.is_some() && val <= s {
                return Outcome::Feasible {
                    solution,
                    objective: val,
                };
            }
        }
        // Feasibility-to-optimisation handoff: an incumbent recorded by an
        // earlier `feasible` call seeds the first bound, so the descent
        // starts strictly below it instead of rediscovering it.
        if let Some(&(_, val)) = self.best.as_ref() {
            if self.objective.is_some() && self.bounded.is_none_or(|b| b > val - 1) {
                let act = self.post_bound(val - 1);
                self.bound_act = Some(act);
                self.bounded = Some(val - 1);
            }
        }
        loop {
            let mut assumed = assumptions.to_vec();
            assumed.extend(self.bound_act);
            match self.engine.solve_under_assumptions(budget, &assumed) {
                SatResult::Unsat => {
                    return match &self.best {
                        // The bound below the incumbent is refuted: the
                        // incumbent is optimal.
                        Some((solution, objective)) => Outcome::Optimal {
                            solution: solution.clone(),
                            objective: *objective,
                        },
                        None => {
                            core.extend_from_slice(self.engine.unsat_core());
                            Outcome::Infeasible
                        }
                    };
                }
                SatResult::Unknown => {
                    return match &self.best {
                        Some((solution, objective)) => Outcome::Feasible {
                            solution: solution.clone(),
                            objective: *objective,
                        },
                        None => Outcome::Unknown,
                    };
                }
                SatResult::Sat => {
                    let solution = self.solution(model);
                    let Some(obj) = self.objective.clone() else {
                        self.best = Some((solution.clone(), 0));
                        self.best_source = IncumbentSource::Solver;
                        return Outcome::Optimal {
                            solution,
                            objective: 0,
                        };
                    };
                    let val = obj.evaluate(|v| solution.value(v));
                    *incumbents += 1;
                    self.best = Some((solution, val));
                    self.best_source = IncumbentSource::Solver;
                    if stop.is_some_and(|s| val <= s) {
                        let (solution, objective) = self.best.clone().expect("just recorded");
                        return Outcome::Feasible {
                            solution,
                            objective,
                        };
                    }
                    let act = self.post_bound(val - 1);
                    self.bound_act = Some(act);
                    self.bounded = Some(val - 1);
                }
            }
        }
    }
}

/// Extracts the entailed fixings presolve derived, as literals over the
/// original model's variables. Don't-care eliminations
/// ([`LitDisposition::Free`]) are *choices* presolve made, not
/// consequences of the model, and are deliberately excluded — seeding one
/// into a certifying replay could mask genuine satisfiability.
fn presolve_fixed_lits(recon: &Reconstruction, num_original_vars: usize) -> Vec<Lit> {
    let mut out = Vec::new();
    for i in 0..num_original_vars {
        let l = Lit::positive(Var(i as u32));
        match recon.map_lit(l) {
            LitDisposition::Fixed(true) => out.push(l),
            LitDisposition::Fixed(false) => out.push(!l),
            _ => {}
        }
    }
    out
}

/// Produces a machine-checked certificate for an `Infeasible` verdict on
/// `model` (optionally under `assumptions`, which are added as unit
/// clauses for the replay — infeasibility never involves the objective).
///
/// The original solve's artefacts are **not** trusted: a fresh sequential
/// proof-logging engine re-solves the *original* model from scratch
/// (no presolve rewriting, no portfolio exchange), and the resulting
/// proof is replayed by the independent checker. `presolve_facts` — unit
/// fixings the presolve pipeline claims — are first re-validated by the
/// checker's own propagation ([`checker`]) and only the provable ones are
/// seeded, so a presolve bug cannot plant an unsound fact.
///
/// Outcomes: replay `Unsat` + checker success ⇒
/// [`Certificate::Certified`]; replay `Sat` with a solution that passes
/// [`Model::check`] ⇒ [`Certificate::CheckFailed`] (the verdict is
/// wrong); anything running out of budget ⇒ [`Certificate::Unchecked`].
/// The replay is given a fresh `config.time_limit` budget.
pub fn certify_infeasibility(
    model: &Model,
    assumptions: &[Lit],
    presolve_facts: &[Lit],
    config: &SolverConfig,
) -> Certificate {
    let start = Instant::now();
    let deadline = config.time_limit.map(|d| start + d);

    // Assumption infeasibility is infeasibility of the augmented model.
    let augmented;
    let model = if assumptions.is_empty() {
        model
    } else {
        let mut m = model.clone();
        for &a in assumptions {
            m.add_clause([a]);
        }
        augmented = m;
        &augmented
    };

    // Only checker-provable presolve facts may seed the replay.
    let facts = checker::entailed_units(model, presolve_facts, deadline);

    let mut proof = ProofLog::new(config.mem_limit.unwrap_or(ProofLog::DEFAULT_CAP));
    for &f in &facts {
        proof.add(&[f], ProofOrigin::Presolve);
    }

    let mut engine = Engine::new(model.num_vars());
    engine.set_features(config.features);
    if let Some(bytes) = config.mem_limit {
        engine.set_mem_limit(bytes);
    }
    let mut root_refuted = false;
    'constraints: for c in model.constraints() {
        for nc in normalize(c) {
            if !engine.add_norm(nc) {
                root_refuted = true;
                break 'constraints;
            }
        }
    }
    if !root_refuted {
        for &f in &facts {
            if !engine.add_norm(NormConstraint::Unit(f)) {
                root_refuted = true;
                break;
            }
        }
    }
    engine.set_proof(proof);
    let res = if root_refuted {
        SatResult::Unsat
    } else {
        engine.solve(Budget {
            deadline,
            conflict_limit: None,
        })
    };
    match res {
        SatResult::Unknown => Certificate::Unchecked {
            reason: "replay budget exhausted before an independent proof was found".to_owned(),
        },
        SatResult::Sat => {
            // Disagreement — but only trust the replay's word after its
            // witness survives the model's own constraint check.
            match model.check(|v| engine.model_value(v)) {
                Ok(()) => Certificate::CheckFailed {
                    detail: "replay found a satisfying assignment: the Infeasible verdict is wrong"
                        .to_owned(),
                },
                Err(c) => Certificate::Unchecked {
                    reason: format!(
                        "replay returned a witness violating constraint {c} (replay fault)"
                    ),
                },
            }
        }
        SatResult::Unsat => {
            let proof = engine.take_proof().expect("proof was installed");
            if proof.truncated() {
                return Certificate::Unchecked {
                    reason: "proof exceeded the memory cap and was truncated".to_owned(),
                };
            }
            match checker::check_proof(model, &proof, deadline) {
                CheckOutcome::Valid { steps } => Certificate::Certified {
                    steps,
                    bytes: proof.bytes(),
                },
                CheckOutcome::Invalid { step, detail } => Certificate::CheckFailed {
                    detail: format!("proof step {step}: {detail}"),
                },
                CheckOutcome::OutOfTime => Certificate::Unchecked {
                    reason: "proof check exceeded the time budget".to_owned(),
                },
            }
        }
    }
}

/// A persistent solver for repeated queries against **one** model.
///
/// Where [`Solver`] rebuilds the engine (and re-runs presolve) on every
/// call, an `IncrementalSolver` presolves and loads the model once at
/// construction and then answers any number of queries on the same
/// engine, so conflict clauses learnt by one query prune the next:
///
/// * [`solve_feasible`](IncrementalSolver::solve_feasible) — one
///   feasibility solve; with an objective set, the solution it finds seeds
///   the later descent (the feasibility-to-optimisation handoff).
/// * [`optimize`](IncrementalSolver::optimize) — branch-and-bound descent
///   to the proven optimum, probing each strengthened objective bound via
///   assumptions on a reified constraint instead of permanent posting.
/// * [`solve_under_assumptions`](IncrementalSolver::solve_under_assumptions)
///   — feasibility with extra literals held true for this call only; on
///   `Infeasible`, [`unsat_core`](IncrementalSolver::unsat_core) names a
///   subset of the assumptions the refutation depends on.
///
/// All queries run on the sequential engine: `config.threads` is ignored
/// (the portfolio races independent engines and has no shared clause
/// database to keep warm). `config.time_limit` applies per query, not to
/// the solver's lifetime; [`stats`](IncrementalSolver::stats) accumulate
/// across queries.
///
/// # Examples
///
/// ```
/// use bilp::{IncrementalSolver, LinExpr, Model, Outcome, SolverConfig};
/// let mut m = Model::new();
/// let vs = m.new_vars(4);
/// m.add_ge(LinExpr::sum(vs.clone()), 2);
/// m.minimize(LinExpr::sum(vs.clone()));
/// let mut s = IncrementalSolver::new(&m, SolverConfig::default());
/// assert!(s.solve_feasible().solution().is_some());
/// assert_eq!(s.optimize().objective(), Some(2));
/// // A third "what if" probe reuses everything learnt above:
/// let probe = s.solve_under_assumptions(&[!vs[0].lit(), !vs[1].lit(), !vs[2].lit()]);
/// assert_eq!(probe, Outcome::Infeasible);
/// assert!(!s.unsat_core().is_empty());
/// ```
#[derive(Debug)]
pub struct IncrementalSolver {
    config: SolverConfig,
    /// `None` when the model was refuted at construction (by presolve or
    /// at the engine root): every query is then trivially `Infeasible`.
    inner: Option<Inner>,
    stats: SolveStats,
    last_core: Vec<Lit>,
    /// Entailed presolve fixings (original-model literals), kept for
    /// certification seeding. Empty unless `config.certify` and presolve
    /// ran.
    facts: Vec<Lit>,
    /// Certificate for the most recent `Infeasible` answer (or for the
    /// construction-time refutation when `inner` is `None`).
    certificate: Option<Certificate>,
    /// External cooperative-cancellation flag (see
    /// [`IncrementalSolver::set_interrupt`]).
    interrupt: Option<Arc<AtomicBool>>,
}

/// The live state of a feasible-so-far [`IncrementalSolver`].
#[derive(Debug)]
struct Inner {
    descent: Descent,
    /// The (possibly presolve-reduced) model the engine holds.
    reduced: Model,
    /// Maps reduced-space solutions and assumption literals back to the
    /// original model; `None` when presolve was disabled.
    reconstruction: Option<Reconstruction>,
    /// The unreduced model, kept only when presolve ran: the fallback
    /// target for assumptions that contradict a don't-care elimination.
    original: Option<Model>,
}

impl IncrementalSolver {
    /// Presolves (per `config.presolve`) and loads `model` into a
    /// persistent engine. Root infeasibility is detected here; queries on
    /// an infeasible solver return [`Outcome::Infeasible`] immediately
    /// with an empty core.
    pub fn new(model: &Model, config: SolverConfig) -> Self {
        let start = Instant::now();
        let mut stats = SolveStats {
            workers: 1,
            ..SolveStats::default()
        };
        let mut facts = Vec::new();
        let built = if config.presolve {
            let pcfg = PresolveConfig {
                probe_budget: config.presolve_probe_budget,
                deadline: config.time_limit.map(|d| start + d),
                ..PresolveConfig::default()
            };
            match presolve(model, &pcfg) {
                Presolved::Infeasible { stats: ps } => {
                    stats.presolve = ps;
                    None
                }
                Presolved::Reduced {
                    model: red,
                    reconstruction,
                    stats: ps,
                } => {
                    stats.presolve = ps;
                    if config.certify {
                        facts = presolve_fixed_lits(&reconstruction, model.num_vars());
                    }
                    Some((red, Some(reconstruction)))
                }
            }
        } else {
            Some((model.clone(), None))
        };
        let inner = built.and_then(|(reduced, reconstruction)| {
            match Descent::build(&reduced, config.features, config.mem_limit) {
                Ok(descent) => Some(Inner {
                    descent,
                    original: reconstruction.is_some().then(|| model.clone()),
                    reduced,
                    reconstruction,
                }),
                Err(es) => {
                    stats.engine = *es;
                    None
                }
            }
        });
        // A construction-time refutation is the only Infeasible this
        // solver can ever justify without live state — certify it now,
        // while the original model is still in reach.
        let certificate = (config.certify && inner.is_none())
            .then(|| certify_infeasibility(model, &[], &facts, &config));
        stats.elapsed = start.elapsed();
        IncrementalSolver {
            config,
            inner,
            stats,
            last_core: Vec::new(),
            facts,
            certificate,
            interrupt: None,
        }
    }

    /// Installs an external cooperative-cancellation flag on the
    /// persistent engine: when another thread sets it, the in-flight
    /// query (and every later one, until the flag is cleared) returns at
    /// its next budget poll exactly as if its deadline had expired. See
    /// [`Solver::set_interrupt`].
    pub fn set_interrupt(&mut self, flag: Arc<AtomicBool>) {
        if let Some(inner) = self.inner.as_mut() {
            inner.descent.engine.set_interrupt(Arc::clone(&flag));
        }
        self.interrupt = Some(flag);
    }

    /// The trust status of the most recent `Infeasible` answer (or of the
    /// construction-time refutation). Present only when
    /// [`SolverConfig::certify`] is set.
    pub fn certificate(&self) -> Option<&Certificate> {
        self.certificate.as_ref()
    }

    /// Certifies the current `Infeasible` answer against the original
    /// model. No-op when certification is off or the refutation happened
    /// at construction (already certified then).
    fn certify_current(&mut self, assumptions: &[Lit]) {
        if !self.config.certify {
            return;
        }
        let cert = match &self.inner {
            None => return, // construction-time certificate stands
            Some(inner) => {
                let target = inner.original.as_ref().unwrap_or(&inner.reduced);
                certify_infeasibility(target, assumptions, &self.facts, &self.config)
            }
        };
        self.certificate = Some(cert);
    }

    /// Cumulative statistics over construction and every query so far.
    pub fn stats(&self) -> SolveStats {
        self.stats
    }

    /// After a query returned [`Outcome::Infeasible`]: the subset of that
    /// query's assumptions (in original-model literals) the refutation
    /// depends on. Empty when the model is infeasible without assumptions.
    pub fn unsat_core(&self) -> &[Lit] {
        &self.last_core
    }

    /// The per-query search budget from this solver's configuration.
    fn budget(&self, start: Instant) -> Budget {
        Budget {
            deadline: self.config.time_limit.map(|d| start + d),
            conflict_limit: self.config.conflict_limit,
        }
    }

    /// Folds one query's outcome back into original-model space and the
    /// cumulative statistics.
    fn finish(&mut self, out: Outcome, start: Instant) -> Outcome {
        let inner = self.inner.as_ref().expect("finish requires live state");
        self.stats.engine = inner.descent.engine.stats();
        self.stats.elapsed += start.elapsed();
        if out.solution().is_some() {
            self.stats.incumbent_source = Some(inner.descent.best_source);
        }
        match &inner.reconstruction {
            None => out,
            Some(recon) => match out {
                Outcome::Optimal {
                    solution,
                    objective,
                } => Outcome::Optimal {
                    solution: recon.expand(&solution),
                    objective,
                },
                Outcome::Feasible {
                    solution,
                    objective,
                } => Outcome::Feasible {
                    solution: recon.expand(&solution),
                    objective,
                },
                other => other,
            },
        }
    }

    /// One feasibility solve. With an objective set the result is
    /// [`Outcome::Feasible`] (optimality unproven — its solution seeds a
    /// later [`optimize`](IncrementalSolver::optimize)); without one it is
    /// [`Outcome::Optimal`] with objective `0`, as for [`Solver::solve`].
    pub fn solve_feasible(&mut self) -> Outcome {
        if self.inner.is_some() {
            self.certificate = None;
        }
        let out = self.solve_feasible_inner();
        if out == Outcome::Infeasible {
            self.certify_current(&[]);
        }
        out
    }

    fn solve_feasible_inner(&mut self) -> Outcome {
        self.last_core.clear();
        let start = Instant::now();
        let budget = self.budget(start);
        let Some(inner) = self.inner.as_mut() else {
            return Outcome::Infeasible;
        };
        let mut core = Vec::new();
        let out = inner
            .descent
            .feasible(&inner.reduced, budget, &[], &mut core);
        self.finish(out, start)
    }

    /// Seeds the descent's incumbent from a heuristic solution, given as
    /// a complete assignment over the **original** model's variables
    /// (`values[i]` is the value of variable `i`).
    ///
    /// The assignment is translated through presolve's reconstruction
    /// and re-validated against the model it must satisfy; candidates
    /// that are the wrong length, contradict an entailed presolve
    /// fixing, or violate any constraint are rejected and leave the
    /// solver untouched. An accepted seed means the next
    /// [`optimize`](IncrementalSolver::optimize) descends from a real
    /// incumbent — its first bound probe is already strictly below the
    /// heuristic solution — and
    /// [`SolveStats::incumbent_source`] reports
    /// [`IncumbentSource::Heuristic`] if no solver-found solution
    /// supersedes it. Verdicts are unaffected either way.
    ///
    /// Returns whether the seed was accepted (valid *and* improving on
    /// the current incumbent, if any).
    pub fn seed_incumbent(&mut self, values: &[bool]) -> bool {
        let Some(inner) = self.inner.as_mut() else {
            return false;
        };
        let reduced_values = match &inner.reconstruction {
            None => {
                if values.len() != inner.reduced.num_vars() {
                    return false;
                }
                values.to_vec()
            }
            Some(recon) => match recon.restrict(values, inner.reduced.num_vars()) {
                Some(v) => v,
                None => return false,
            },
        };
        let solution = Assignment::from_values(reduced_values);
        if inner.reduced.check(|v| solution.value(v)).is_err() {
            return false;
        }
        let objective = inner
            .reduced
            .objective()
            .map(|o| o.normalized().evaluate(|v| solution.value(v)))
            .unwrap_or(0);
        if inner.descent.seed(solution, objective) {
            self.stats.probe_incumbents += 1;
            true
        } else {
            false
        }
    }

    /// Branch-and-bound descent to the proven optimum, reusing everything
    /// already learnt (and any incumbent from
    /// [`solve_feasible`](IncrementalSolver::solve_feasible)). Calling it
    /// again after an [`Outcome::Optimal`] verdict just re-proves the
    /// bound cheaply and returns the same solution.
    pub fn optimize(&mut self) -> Outcome {
        if self.inner.is_some() {
            self.certificate = None;
        }
        let out = self.optimize_inner();
        if out == Outcome::Infeasible {
            self.certify_current(&[]);
        }
        out
    }

    fn optimize_inner(&mut self) -> Outcome {
        self.last_core.clear();
        let start = Instant::now();
        let budget = self.budget(start);
        let Some(inner) = self.inner.as_mut() else {
            return Outcome::Infeasible;
        };
        let mut core = Vec::new();
        let mut incumbents = 0;
        let out = inner.descent.optimize(
            &inner.reduced,
            budget,
            &[],
            self.config.objective_stop,
            &mut incumbents,
            &mut core,
        );
        self.stats.incumbents += incumbents;
        self.finish(out, start)
    }

    /// Feasibility with every literal in `assumptions` (original-model
    /// literals) held true for this call only. On [`Outcome::Infeasible`],
    /// [`unsat_core`](IncrementalSolver::unsat_core) reports a responsible
    /// subset of the assumptions. The objective is evaluated on the
    /// solution but not optimised.
    pub fn solve_under_assumptions(&mut self, assumptions: &[Lit]) -> Outcome {
        if self.inner.is_some() {
            self.certificate = None;
        }
        let out = self.solve_under_assumptions_inner(assumptions);
        if out == Outcome::Infeasible {
            self.certify_current(assumptions);
        }
        out
    }

    fn solve_under_assumptions_inner(&mut self, assumptions: &[Lit]) -> Outcome {
        self.last_core.clear();
        let start = Instant::now();
        let budget = self.budget(start);
        let Some(inner) = self.inner.as_mut() else {
            return Outcome::Infeasible;
        };
        // Map assumptions into the reduced space, remembering which
        // original literal each reduced one stands for.
        let mut mapped = Vec::with_capacity(assumptions.len());
        let mut assoc: Vec<(Lit, Lit)> = Vec::with_capacity(assumptions.len());
        for &a in assumptions {
            match &inner.reconstruction {
                None => {
                    mapped.push(a);
                    assoc.push((a, a));
                }
                Some(recon) => match recon.map_lit(a) {
                    LitDisposition::Fixed(true) | LitDisposition::Free(true) => {}
                    LitDisposition::Fixed(false) => {
                        self.last_core = vec![a];
                        self.stats.elapsed += start.elapsed();
                        return Outcome::Infeasible;
                    }
                    // Contradicts a don't-care elimination: the persistent
                    // reduced engine cannot answer this probe. Fall back to
                    // a one-shot presolve-free solve of the original model.
                    LitDisposition::Free(false) => {
                        let original = inner
                            .original
                            .as_ref()
                            .expect("presolved state keeps the original model");
                        let mut fallback = Solver::with_config(SolverConfig {
                            presolve: false,
                            // The outer wrapper certifies Infeasible
                            // answers itself; avoid a double replay.
                            certify: false,
                            ..self.config
                        });
                        if let Some(flag) = &self.interrupt {
                            fallback.set_interrupt(Arc::clone(flag));
                        }
                        let out = fallback.solve_under_assumptions(original, assumptions);
                        self.last_core = fallback.last_core.clone();
                        self.stats.elapsed += start.elapsed();
                        // The probe contract is feasibility, not proven
                        // optimality — downgrade the optimising fallback's
                        // verdict when an objective exists.
                        return match out {
                            Outcome::Optimal {
                                solution,
                                objective,
                            } if original.objective().is_some() => Outcome::Feasible {
                                solution,
                                objective,
                            },
                            other => other,
                        };
                    }
                    LitDisposition::Mapped(rl) => {
                        mapped.push(rl);
                        assoc.push((rl, a));
                    }
                },
            }
        }
        let mut core = Vec::new();
        let out = inner
            .descent
            .feasible(&inner.reduced, budget, &mapped, &mut core);
        self.last_core = core
            .iter()
            .filter_map(|rl| assoc.iter().find(|(r, _)| r == rl).map(|&(_, a)| a))
            .collect();
        self.finish(out, start)
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // column-index loops in incidence constructions
mod tests {
    use super::*;
    use crate::model::Model;

    #[test]
    fn feasibility_without_objective() {
        let mut m = Model::new();
        let x = m.new_var();
        let y = m.new_var();
        m.add_clause([x.lit(), y.lit()]);
        m.add_clause([!x.lit()]);
        let out = Solver::new().solve(&m);
        let Outcome::Optimal {
            solution,
            objective,
        } = out
        else {
            panic!("expected optimal, got {out:?}");
        };
        assert_eq!(objective, 0);
        assert!(!solution.value(x));
        assert!(solution.value(y));
    }

    #[test]
    fn infeasible_model() {
        let mut m = Model::new();
        let x = m.new_var();
        m.fix(x, true);
        m.fix(x, false);
        assert_eq!(Solver::new().solve(&m), Outcome::Infeasible);
    }

    #[test]
    fn minimization_finds_optimum() {
        // Cover problem: choose a subset of {3,5,7} summing >= 8, minimize count.
        let mut m = Model::new();
        let a = m.new_var(); // weight 3
        let b = m.new_var(); // weight 5
        let c = m.new_var(); // weight 7
        let mut e = LinExpr::new();
        e.add_term(3, a);
        e.add_term(5, b);
        e.add_term(7, c);
        m.add_ge(e, 8);
        m.minimize(LinExpr::sum([a, b, c]));
        let out = Solver::new().solve(&m);
        let Outcome::Optimal {
            solution,
            objective,
        } = out
        else {
            panic!("expected optimal, got {out:?}");
        };
        assert_eq!(objective, 2);
        let w = [(a, 3), (b, 5), (c, 7)]
            .iter()
            .filter(|(v, _)| solution.value(*v))
            .map(|&(_, w)| w)
            .sum::<i64>();
        assert!(w >= 8);
    }

    #[test]
    fn weighted_objective() {
        let mut m = Model::new();
        let a = m.new_var();
        let b = m.new_var();
        m.add_clause([a.lit(), b.lit()]);
        let mut obj = LinExpr::new();
        obj.add_term(10, a);
        obj.add_term(1, b);
        m.minimize(obj);
        let out = Solver::new().solve(&m);
        assert_eq!(out.objective(), Some(1));
        assert!(out.solution().expect("has solution").value(b));
    }

    #[test]
    fn negative_objective_coefficients() {
        // Maximize a (minimize -a): a free variable should go to 1.
        let mut m = Model::new();
        let a = m.new_var();
        let mut obj = LinExpr::new();
        obj.add_term(-1, a);
        m.minimize(obj);
        let out = Solver::new().solve(&m);
        assert_eq!(out.objective(), Some(-1));
    }

    #[test]
    fn unknown_on_tiny_conflict_budget() {
        let n = 9;
        let mut m = Model::new();
        let p: Vec<Vec<_>> = (0..n + 1).map(|_| m.new_vars(n)).collect();
        for row in &p {
            m.add_clause(row.iter().map(|v| v.lit()));
        }
        for h in 0..n {
            m.add_at_most_one((0..n + 1).map(|i| p[i][h]));
        }
        let mut s = Solver::with_config(SolverConfig {
            conflict_limit: Some(2),
            ..SolverConfig::default()
        });
        assert_eq!(s.solve(&m), Outcome::Unknown);
    }

    #[test]
    fn objective_stop_reports_feasible_at_target() {
        // Chain clauses with optimum 4; a reachable target ends the
        // descent with an unproven incumbent at or below it.
        let mut m = Model::new();
        let vs = m.new_vars(8);
        for w in vs.windows(2) {
            m.add_clause([w[0].lit(), w[1].lit()]);
        }
        m.minimize(LinExpr::sum(vs.clone()));
        let mut s = Solver::with_config(SolverConfig {
            objective_stop: Some(5),
            ..SolverConfig::default()
        });
        match s.solve(&m) {
            Outcome::Feasible { objective, .. } => assert!(objective <= 5),
            Outcome::Optimal { objective, .. } => assert_eq!(objective, 4),
            other => panic!("unexpected outcome {other:?}"),
        }
        // A target below the optimum never triggers: the full descent
        // runs and proves the true optimum.
        let mut s = Solver::with_config(SolverConfig {
            objective_stop: Some(0),
            ..SolverConfig::default()
        });
        assert_eq!(s.solve(&m).objective(), Some(4));
    }

    #[test]
    fn objective_stop_applies_to_incremental_descent() {
        let mut m = Model::new();
        let vs = m.new_vars(8);
        for w in vs.windows(2) {
            m.add_clause([w[0].lit(), w[1].lit()]);
        }
        m.minimize(LinExpr::sum(vs.clone()));
        let mut s = IncrementalSolver::new(
            &m,
            SolverConfig {
                objective_stop: Some(6),
                ..SolverConfig::default()
            },
        );
        let feas = s.solve_feasible();
        assert!(feas.solution().is_some());
        match s.optimize() {
            Outcome::Feasible { objective, .. } => assert!(objective <= 6),
            Outcome::Optimal { objective, .. } => assert_eq!(objective, 4),
            other => panic!("unexpected outcome {other:?}"),
        }
    }

    #[test]
    fn branch_hints_do_not_change_verdicts() {
        // Same model, adversarial hints (wrong phases, scrambled
        // priorities): identical optimum.
        let mut m = Model::new();
        let vs = m.new_vars(8);
        for w in vs.windows(2) {
            m.add_clause([w[0].lit(), w[1].lit()]);
        }
        m.minimize(LinExpr::sum(vs.clone()));
        let base = Solver::new().solve(&m).objective();
        for (i, v) in vs.iter().enumerate() {
            m.suggest_branch(*v, (i as f64) * 0.3 + 1.0, i % 2 == 0);
        }
        let hinted = Solver::new().solve(&m).objective();
        assert_eq!(base, hinted);
    }

    #[test]
    fn stats_populated() {
        let mut m = Model::new();
        let vs = m.new_vars(6);
        m.add_ge(LinExpr::sum(vs.clone()), 3);
        m.minimize(LinExpr::sum(vs));
        let mut s = Solver::new();
        let out = s.solve(&m);
        assert_eq!(out.objective(), Some(3));
        assert!(s.stats().incumbents >= 1);
    }
}
