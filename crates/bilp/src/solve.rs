//! The public solving interface: feasibility and branch-and-bound
//! optimisation on top of the CDCL engine.

use crate::engine::{Budget, Engine, EngineFeatures, EngineStats, SatResult};
use crate::model::{Cmp, Constraint, LinExpr, Model, Var};
use crate::normalize::normalize;
use crate::presolve::{presolve, PresolveConfig, PresolveStats, Presolved, Reconstruction};
use std::time::{Duration, Instant};

/// Solver configuration.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SolverConfig {
    /// Wall-clock limit for the whole solve (feasibility + optimisation).
    pub time_limit: Option<Duration>,
    /// Conflict limit per engine search (mainly for tests).
    pub conflict_limit: Option<u64>,
    /// Engine feature toggles (ablation studies; default all enabled).
    pub features: EngineFeatures,
    /// Number of portfolio workers: `1` (the default) solves on the
    /// calling thread exactly as before; `0` means "one per available
    /// core"; `n > 1` races `n` diversified engines (see
    /// [`crate::portfolio`]).
    pub threads: usize,
    /// Base seed for engine diversification (worker seeds derive from
    /// it). With `threads = 1` the seed only matters if
    /// `features.random_tiebreak` is enabled.
    pub seed: u64,
    /// Run the presolve pipeline before search (see [`crate::presolve`]).
    /// When `false`, solving follows the exact pre-presolve code path.
    /// Defaults to the `BILP_PRESOLVE` environment variable, or `true`.
    pub presolve: bool,
    /// Propagation-step budget for failed-literal probing inside presolve;
    /// `0` disables probing (the cheap passes still run).
    pub presolve_probe_budget: u64,
}

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            time_limit: None,
            conflict_limit: None,
            features: EngineFeatures::default(),
            threads: 1,
            seed: 0,
            presolve: presolve_from_env().unwrap_or(true),
            presolve_probe_budget: PresolveConfig::default().probe_budget,
        }
    }
}

impl SolverConfig {
    /// The worker count this configuration resolves to: `threads`, with
    /// `0` mapped to the machine's available parallelism.
    pub fn effective_threads(&self) -> usize {
        match self.threads {
            0 => std::thread::available_parallelism()
                .map(|n| n.get())
                .unwrap_or(1),
            n => n,
        }
    }
}

/// Reads the `BILP_THREADS` environment variable: the conventional way
/// for binaries and examples in this repository to default their
/// `--threads` flag. Unset, empty or unparsable values yield `None`;
/// `0` means "all cores" (see [`SolverConfig::threads`]).
pub fn threads_from_env() -> Option<usize> {
    std::env::var("BILP_THREADS").ok()?.trim().parse().ok()
}

/// Reads the `BILP_PRESOLVE` environment variable: the escape hatch for
/// disabling presolve globally. `0`, `off`, `false` and `no` disable it;
/// any other non-empty value enables it; unset/empty yields `None`.
pub fn presolve_from_env() -> Option<bool> {
    let v = std::env::var("BILP_PRESOLVE").ok()?;
    match v.trim() {
        "" => None,
        "0" | "off" | "false" | "no" => Some(false),
        _ => Some(true),
    }
}

/// A complete 0/1 assignment to the model's variables.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Assignment {
    values: Vec<bool>,
}

impl Assignment {
    pub(crate) fn from_values(values: Vec<bool>) -> Self {
        Assignment { values }
    }

    /// The value assigned to `var`.
    pub fn value(&self, var: Var) -> bool {
        self.values[var.index()]
    }

    /// Number of variables.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the assignment covers zero variables.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Iterates over the variables assigned `true`.
    pub fn trues(&self) -> impl Iterator<Item = Var> + '_ {
        self.values
            .iter()
            .enumerate()
            .filter(|&(_, v)| *v)
            .map(|(i, _)| Var(i as u32))
    }
}

/// Result of [`Solver::solve`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Outcome {
    /// A provably optimal solution (for pure feasibility problems, any
    /// satisfying solution is optimal with objective 0).
    Optimal {
        /// The optimal assignment.
        solution: Assignment,
        /// Objective value of the solution.
        objective: i64,
    },
    /// The budget expired with an incumbent whose optimality is unproven.
    Feasible {
        /// The best assignment found.
        solution: Assignment,
        /// Objective value of the incumbent.
        objective: i64,
    },
    /// The model is provably infeasible.
    Infeasible,
    /// The budget expired before feasibility could be decided. This is how
    /// the paper's Table 2 `T` entries manifest.
    Unknown,
}

impl Outcome {
    /// The solution, if any.
    pub fn solution(&self) -> Option<&Assignment> {
        match self {
            Outcome::Optimal { solution, .. } | Outcome::Feasible { solution, .. } => {
                Some(solution)
            }
            _ => None,
        }
    }

    /// The objective value, if a solution exists.
    pub fn objective(&self) -> Option<i64> {
        match self {
            Outcome::Optimal { objective, .. } | Outcome::Feasible { objective, .. } => {
                Some(*objective)
            }
            _ => None,
        }
    }

    /// Whether feasibility was decided (either way) within budget.
    pub fn is_decided(&self) -> bool {
        !matches!(self, Outcome::Unknown)
    }
}

/// Solve statistics.
#[derive(Debug, Clone, Copy, Default)]
pub struct SolveStats {
    /// Engine statistics accumulated over all branch-and-bound rounds
    /// (summed across every portfolio worker when `threads > 1`).
    pub engine: EngineStats,
    /// Number of incumbent solutions found during optimisation.
    pub incumbents: u64,
    /// Total wall-clock time.
    pub elapsed: Duration,
    /// Number of portfolio workers that ran (1 for the sequential path).
    pub workers: u32,
    /// Index of the first worker that produced a decisive verdict, when
    /// the portfolio ran.
    pub winner: Option<u32>,
    /// Presolve reduction counters (all zero when presolve is disabled).
    pub presolve: PresolveStats,
}

/// The 0-1 ILP solver.
///
/// # Examples
///
/// ```
/// use bilp::{LinExpr, Model, Outcome, Solver};
/// let mut m = Model::new();
/// let vs = m.new_vars(4);
/// m.add_ge(LinExpr::sum(vs.clone()), 2);
/// m.minimize(LinExpr::sum(vs.clone()));
/// let outcome = Solver::new().solve(&m);
/// assert_eq!(outcome.objective(), Some(2));
/// ```
#[derive(Debug, Clone, Default)]
pub struct Solver {
    config: SolverConfig,
    stats: SolveStats,
}

impl Solver {
    /// Creates a solver with an unlimited budget.
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a solver with the given configuration.
    pub fn with_config(config: SolverConfig) -> Self {
        Solver {
            config,
            stats: SolveStats::default(),
        }
    }

    /// Statistics of the most recent [`Solver::solve`] call.
    pub fn stats(&self) -> SolveStats {
        self.stats
    }

    /// Solves the model: pure feasibility when no objective is set,
    /// branch-and-bound minimisation otherwise.
    ///
    /// Returned solutions always satisfy every model constraint (this is
    /// re-checked internally; see [`Model::check`]).
    pub fn solve(&mut self, model: &Model) -> Outcome {
        self.stats = SolveStats::default();
        let start = Instant::now();
        // One absolute deadline covers presolve *and* search, so a long
        // probe pass eats into — never extends — the solve budget.
        let deadline = self.config.time_limit.map(|d| start + d);
        if !self.config.presolve {
            return self.solve_reduced(model, start, deadline);
        }
        let pcfg = PresolveConfig {
            probe_budget: self.config.presolve_probe_budget,
            deadline,
        };
        match presolve(model, &pcfg) {
            Presolved::Infeasible { stats } => {
                self.stats.presolve = stats;
                self.stats.workers = 1;
                self.stats.elapsed = start.elapsed();
                Outcome::Infeasible
            }
            Presolved::Reduced {
                model: red,
                reconstruction,
                stats,
            } => {
                self.stats.presolve = stats;
                let out = self.solve_reduced(&red, start, deadline);
                self.stats.elapsed = start.elapsed();
                Self::expand_outcome(out, &reconstruction, model)
            }
        }
    }

    /// Maps an outcome on the reduced model back to original variables.
    fn expand_outcome(out: Outcome, recon: &Reconstruction, original: &Model) -> Outcome {
        let expand = |solution: &Assignment| {
            let full = recon.expand(solution);
            debug_assert_eq!(original.check(|v| full.value(v)), Ok(()));
            full
        };
        match out {
            Outcome::Optimal {
                solution,
                objective,
            } => Outcome::Optimal {
                solution: expand(&solution),
                objective,
            },
            Outcome::Feasible {
                solution,
                objective,
            } => Outcome::Feasible {
                solution: expand(&solution),
                objective,
            },
            other => other,
        }
    }

    /// Solves `model` as-is (no presolve): the sequential engine or the
    /// portfolio, charged against an absolute deadline.
    fn solve_reduced(
        &mut self,
        model: &Model,
        start: Instant,
        deadline: Option<Instant>,
    ) -> Outcome {
        let threads = self.config.effective_threads();
        if threads > 1 {
            let out = crate::portfolio::solve_portfolio(
                model,
                &self.config,
                threads,
                &mut self.stats,
                deadline,
            );
            self.stats.elapsed = start.elapsed();
            return out;
        }
        self.stats.workers = 1;

        let mut engine = Engine::new(model.num_vars());
        engine.set_features(self.config.features);
        for &(var, priority, phase) in model.branch_hints() {
            engine.set_branch_hint(var, priority, phase);
        }
        let mut root_infeasible = false;
        'add: for c in model.constraints() {
            for nc in normalize(c) {
                if !engine.add_norm(nc) {
                    root_infeasible = true;
                    break 'add;
                }
            }
        }
        if root_infeasible {
            self.stats.elapsed = start.elapsed();
            self.stats.engine = engine.stats();
            return Outcome::Infeasible;
        }

        let budget = Budget {
            deadline,
            conflict_limit: self.config.conflict_limit,
        };

        let objective = model.objective().map(LinExpr::normalized);
        let mut best: Option<(Assignment, i64)> = None;

        loop {
            let result = engine.solve(budget);
            self.stats.engine = engine.stats();
            match result {
                SatResult::Unsat => {
                    self.stats.elapsed = start.elapsed();
                    return match best {
                        Some((solution, objective)) => Outcome::Optimal {
                            solution,
                            objective,
                        },
                        None => Outcome::Infeasible,
                    };
                }
                SatResult::Unknown => {
                    self.stats.elapsed = start.elapsed();
                    return match best {
                        Some((solution, objective)) => Outcome::Feasible {
                            solution,
                            objective,
                        },
                        None => Outcome::Unknown,
                    };
                }
                SatResult::Sat => {
                    let solution = Assignment {
                        values: (0..model.num_vars())
                            .map(|i| engine.model_value(Var(i as u32)))
                            .collect(),
                    };
                    debug_assert_eq!(model.check(|v| solution.value(v)), Ok(()));
                    let Some(obj) = &objective else {
                        self.stats.elapsed = start.elapsed();
                        return Outcome::Optimal {
                            solution,
                            objective: 0,
                        };
                    };
                    let val = obj.evaluate(|v| solution.value(v));
                    self.stats.incumbents += 1;
                    best = Some((solution, val));
                    // Strengthen: objective <= val - 1.
                    let bound = Constraint {
                        expr: obj.clone(),
                        cmp: Cmp::Le,
                        rhs: val - 1,
                    };
                    let mut closed = false;
                    for nc in normalize(&bound) {
                        if !engine.add_norm(nc) {
                            closed = true;
                            break;
                        }
                    }
                    if closed {
                        let (solution, objective) = best.take().expect("incumbent recorded above");
                        self.stats.elapsed = start.elapsed();
                        return Outcome::Optimal {
                            solution,
                            objective,
                        };
                    }
                }
            }
        }
    }
}

#[cfg(test)]
#[allow(clippy::needless_range_loop)] // column-index loops in incidence constructions
mod tests {
    use super::*;
    use crate::model::Model;

    #[test]
    fn feasibility_without_objective() {
        let mut m = Model::new();
        let x = m.new_var();
        let y = m.new_var();
        m.add_clause([x.lit(), y.lit()]);
        m.add_clause([!x.lit()]);
        let out = Solver::new().solve(&m);
        let Outcome::Optimal {
            solution,
            objective,
        } = out
        else {
            panic!("expected optimal, got {out:?}");
        };
        assert_eq!(objective, 0);
        assert!(!solution.value(x));
        assert!(solution.value(y));
    }

    #[test]
    fn infeasible_model() {
        let mut m = Model::new();
        let x = m.new_var();
        m.fix(x, true);
        m.fix(x, false);
        assert_eq!(Solver::new().solve(&m), Outcome::Infeasible);
    }

    #[test]
    fn minimization_finds_optimum() {
        // Cover problem: choose a subset of {3,5,7} summing >= 8, minimize count.
        let mut m = Model::new();
        let a = m.new_var(); // weight 3
        let b = m.new_var(); // weight 5
        let c = m.new_var(); // weight 7
        let mut e = LinExpr::new();
        e.add_term(3, a);
        e.add_term(5, b);
        e.add_term(7, c);
        m.add_ge(e, 8);
        m.minimize(LinExpr::sum([a, b, c]));
        let out = Solver::new().solve(&m);
        let Outcome::Optimal {
            solution,
            objective,
        } = out
        else {
            panic!("expected optimal, got {out:?}");
        };
        assert_eq!(objective, 2);
        let w = [(a, 3), (b, 5), (c, 7)]
            .iter()
            .filter(|(v, _)| solution.value(*v))
            .map(|&(_, w)| w)
            .sum::<i64>();
        assert!(w >= 8);
    }

    #[test]
    fn weighted_objective() {
        let mut m = Model::new();
        let a = m.new_var();
        let b = m.new_var();
        m.add_clause([a.lit(), b.lit()]);
        let mut obj = LinExpr::new();
        obj.add_term(10, a);
        obj.add_term(1, b);
        m.minimize(obj);
        let out = Solver::new().solve(&m);
        assert_eq!(out.objective(), Some(1));
        assert!(out.solution().expect("has solution").value(b));
    }

    #[test]
    fn negative_objective_coefficients() {
        // Maximize a (minimize -a): a free variable should go to 1.
        let mut m = Model::new();
        let a = m.new_var();
        let mut obj = LinExpr::new();
        obj.add_term(-1, a);
        m.minimize(obj);
        let out = Solver::new().solve(&m);
        assert_eq!(out.objective(), Some(-1));
    }

    #[test]
    fn unknown_on_tiny_conflict_budget() {
        let n = 9;
        let mut m = Model::new();
        let p: Vec<Vec<_>> = (0..n + 1).map(|_| m.new_vars(n)).collect();
        for row in &p {
            m.add_clause(row.iter().map(|v| v.lit()));
        }
        for h in 0..n {
            m.add_at_most_one((0..n + 1).map(|i| p[i][h]));
        }
        let mut s = Solver::with_config(SolverConfig {
            conflict_limit: Some(2),
            ..SolverConfig::default()
        });
        assert_eq!(s.solve(&m), Outcome::Unknown);
    }

    #[test]
    fn branch_hints_do_not_change_verdicts() {
        // Same model, adversarial hints (wrong phases, scrambled
        // priorities): identical optimum.
        let mut m = Model::new();
        let vs = m.new_vars(8);
        for w in vs.windows(2) {
            m.add_clause([w[0].lit(), w[1].lit()]);
        }
        m.minimize(LinExpr::sum(vs.clone()));
        let base = Solver::new().solve(&m).objective();
        for (i, v) in vs.iter().enumerate() {
            m.suggest_branch(*v, (i as f64) * 0.3 + 1.0, i % 2 == 0);
        }
        let hinted = Solver::new().solve(&m).objective();
        assert_eq!(base, hinted);
    }

    #[test]
    fn stats_populated() {
        let mut m = Model::new();
        let vs = m.new_vars(6);
        m.add_ge(LinExpr::sum(vs.clone()), 3);
        m.minimize(LinExpr::sum(vs));
        let mut s = Solver::new();
        let out = s.solve(&m);
        assert_eq!(out.objective(), Some(3));
        assert!(s.stats().incumbents >= 1);
    }
}
