//! # cgra-rng — a minimal deterministic PRNG
//!
//! The repository originally pulled the `rand` crate for two call sites
//! (random kernel generation and the simulated-annealing mapper). The
//! build environment has no network access to a crates registry, so this
//! tiny crate provides the small slice of the `rand` API those call sites
//! need: a seedable generator with uniform integer ranges, Bernoulli
//! draws and unit-interval floats.
//!
//! The generator is xoshiro256** seeded through splitmix64 — the standard
//! pairing recommended by the xoshiro authors. It is deterministic per
//! seed and portable across platforms, which is all the repository's
//! fuzzing and annealing loops rely on (none of them depend on the exact
//! stream the external `rand` crate produced).

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

/// A seedable xoshiro256** generator.
///
/// # Examples
///
/// ```
/// use cgra_rng::Rng;
/// let mut a = Rng::seed_from_u64(7);
/// let mut b = Rng::seed_from_u64(7);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Rng {
    state: [u64; 4],
}

fn splitmix64(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl Rng {
    /// Creates a generator from a 64-bit seed (any value, including 0).
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut s = seed;
        Rng {
            state: [
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
                splitmix64(&mut s),
            ],
        }
    }

    /// The next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        let s = &mut self.state;
        let result = s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// A uniform value in `[0, n)` (Lemire's multiply-shift reduction,
    /// with rejection to remove modulo bias).
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn below(&mut self, n: u64) -> u64 {
        assert!(n > 0, "empty range");
        // Rejection sampling on the top bits: unbiased and branch-cheap
        // for the small ranges this repository draws from.
        let zone = u64::MAX - (u64::MAX % n);
        loop {
            let v = self.next_u64();
            if v < zone {
                return v % n;
            }
        }
    }

    /// A uniform `usize` in `range` (half-open).
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    pub fn gen_range(&mut self, range: std::ops::Range<usize>) -> usize {
        assert!(range.start < range.end, "empty range");
        range.start + self.below((range.end - range.start) as u64) as usize
    }

    /// A uniform `usize` in `range` (inclusive).
    pub fn gen_range_inclusive(&mut self, range: std::ops::RangeInclusive<usize>) -> usize {
        let (lo, hi) = (*range.start(), *range.end());
        assert!(lo <= hi, "empty range");
        lo + self.below((hi - lo + 1) as u64) as usize
    }

    /// A uniform `i64` in `range` (inclusive).
    pub fn gen_i64_inclusive(&mut self, range: std::ops::RangeInclusive<i64>) -> i64 {
        let (lo, hi) = (*range.start(), *range.end());
        assert!(lo <= hi, "empty range");
        lo.wrapping_add(self.below((hi - lo + 1) as u64) as i64)
    }

    /// `true` with probability `p`.
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// A uniform `f64` in `[0, 1)` with 53 bits of precision.
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// A multiplicative jitter factor, uniform in `[0.5, 1.5)`.
    ///
    /// Retry loops scale their backoff delay by this so that a fleet of
    /// clients knocked over by the same event does not retry in
    /// lockstep (the thundering-herd failure mode the `cgra-router`
    /// backoff exists to avoid). Centred on 1.0, so expected backoff is
    /// unchanged.
    pub fn jitter(&mut self) -> f64 {
        0.5 + self.gen_f64()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let a: Vec<u64> = {
            let mut r = Rng::seed_from_u64(42);
            (0..32).map(|_| r.next_u64()).collect()
        };
        let b: Vec<u64> = {
            let mut r = Rng::seed_from_u64(42);
            (0..32).map(|_| r.next_u64()).collect()
        };
        assert_eq!(a, b);
        let c = Rng::seed_from_u64(43).next_u64();
        assert_ne!(a[0], c);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = Rng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(3..17);
            assert!((3..17).contains(&v));
            let w = r.gen_range_inclusive(0..=5);
            assert!((0..=5).contains(&w));
            let x = r.gen_i64_inclusive(-4..=4);
            assert!((-4..=4).contains(&x));
            let f = r.gen_f64();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn below_covers_all_residues() {
        let mut r = Rng::seed_from_u64(9);
        let mut seen = [false; 7];
        for _ in 0..1_000 {
            seen[r.below(7) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn jitter_is_centred_and_bounded() {
        let mut r = Rng::seed_from_u64(5);
        let mut sum = 0.0;
        for _ in 0..10_000 {
            let j = r.jitter();
            assert!((0.5..1.5).contains(&j));
            sum += j;
        }
        let mean = sum / 10_000.0;
        assert!((mean - 1.0).abs() < 0.02, "jitter mean drifted: {mean}");
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = Rng::seed_from_u64(2);
        assert!(!(0..100).any(|_| r.gen_bool(0.0)));
        assert!((0..100).all(|_| r.gen_bool(1.0)));
    }
}
