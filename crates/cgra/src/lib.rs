//! # cgra — an architecture-agnostic ILP CGRA mapping framework
//!
//! A Rust reproduction of *"An Architecture-Agnostic Integer Linear
//! Programming Approach to CGRA Mapping"* (S. A. Chin and J. H. Anderson,
//! DAC 2018), the exact mapper of the CGRA-ME framework.
//!
//! This facade re-exports the whole stack:
//!
//! * [`dfg`] — data-flow graphs and the paper's 19-benchmark suite,
//! * [`arch`] — the generic architecture model and the paper's 8 test
//!   architectures,
//! * [`mrrg`] — Modulo Routing Resource Graph generation,
//! * [`ilp`] — the from-scratch 0-1 ILP solver standing in for Gurobi,
//! * [`mapper`] — the exact ILP mapper and the simulated-annealing
//!   baseline,
//! * [`sim`] — configuration extraction and cycle-accurate functional
//!   simulation of mapped arrays.
//!
//! # Examples
//!
//! Map a multiply-accumulate kernel onto a 4x4 heterogeneous CGRA and
//! verify the mapped fabric computes it:
//!
//! ```
//! use cgra::arch::families::{grid, FuMix, GridParams, Interconnect};
//! use cgra::mapper::{IlpMapper, MapperOptions};
//! use cgra::mrrg::build_mrrg;
//!
//! let arch = grid(GridParams::paper(FuMix::Heterogeneous, Interconnect::Diagonal));
//! let mrrg = build_mrrg(&arch, 2); // dual context, II = 2
//! let dfg = cgra::dfg::benchmarks::mac();
//! let report = IlpMapper::new(MapperOptions::default()).map(&dfg, &mrrg);
//! let mapping = report.outcome.mapping().expect("mac maps at II=2");
//! cgra::sim::verify_mapping_vectors(&arch, &mrrg, &dfg, mapping, 2)?;
//! # Ok::<(), cgra::sim::VerifyError>(())
//! ```

#![warn(missing_docs)]

/// Data-flow graphs (re-export of [`cgra_dfg`]).
pub mod dfg {
    pub use cgra_dfg::*;
}

/// Architecture modelling (re-export of [`cgra_arch`]).
pub mod arch {
    pub use cgra_arch::*;
}

/// Modulo Routing Resource Graphs (re-export of [`cgra_mrrg`]).
pub mod mrrg {
    pub use cgra_mrrg::*;
}

/// The 0-1 ILP solver (re-export of [`bilp`]).
pub mod ilp {
    pub use bilp::*;
}

/// The mappers (re-export of [`cgra_mapper`]).
pub mod mapper {
    pub use cgra_mapper::*;
}

/// Functional simulation (re-export of [`cgra_sim`]).
pub mod sim {
    pub use cgra_sim::*;
}
