//! Quickstart: map a kernel onto a CGRA, inspect the result, and verify
//! the mapped fabric end-to-end.
//!
//! Run with: `cargo run --release --example quickstart`

use cgra::arch::families::{grid, FuMix, GridParams, Interconnect};
use cgra::dfg::{Dfg, OpKind};
use cgra::mapper::{IlpMapper, MapOutcome, MapperOptions};
use cgra::mrrg::build_mrrg;
use cgra::sim::verify_mapping_vectors;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Describe the kernel as a data-flow graph: r = (a*x + y) >> 1.
    let mut dfg = Dfg::new("axpy_shift");
    let a = dfg.add_op("a", OpKind::Input)?;
    let x = dfg.add_op("x", OpKind::Input)?;
    let y = dfg.add_op("y", OpKind::Input)?;
    let one = dfg.add_const("one", 1)?;
    let m = dfg.add_op("m", OpKind::Mul)?;
    let s = dfg.add_op("s", OpKind::Add)?;
    let sh = dfg.add_op("sh", OpKind::Shr)?;
    let o = dfg.add_op("r", OpKind::Output)?;
    dfg.connect(a, m, 0)?;
    dfg.connect(x, m, 1)?;
    dfg.connect(m, s, 0)?;
    dfg.connect(y, s, 1)?;
    dfg.connect(s, sh, 0)?;
    dfg.connect(one, sh, 1)?;
    dfg.connect(sh, o, 0)?;
    dfg.validate()?;
    println!("kernel: {dfg}");

    // 2. Pick an architecture — one of the paper's 4x4 families — and
    //    generate its Modulo Routing Resource Graph for a single context.
    let arch = grid(GridParams::paper(
        FuMix::Homogeneous,
        Interconnect::Orthogonal,
    ));
    let mrrg = build_mrrg(&arch, 1);
    println!("architecture: {arch}");
    println!("mrrg: {mrrg}");

    // 3. Map with the exact ILP mapper, minimising routing usage (with a
    //    budget: optimality proofs can be expensive, and the incumbent at
    //    the deadline is still a valid, usually near-minimal mapping).
    let options = MapperOptions {
        optimize: true,
        warm_start: true,
        time_limit: Some(std::time::Duration::from_secs(20)),
        ..MapperOptions::default()
    };
    let report = IlpMapper::new(options).map(&dfg, &mrrg);
    println!("mapping: {} in {:.2?}", report.outcome, report.elapsed);
    let MapOutcome::Mapped { mapping, .. } = &report.outcome else {
        return Err("kernel did not map".into());
    };

    // 4. Show where each operation landed.
    for (q, p) in &mapping.placement {
        println!(
            "  {:<6} -> {}",
            dfg.ops()[q.index()].name,
            mrrg.nodes()[p.index()].name
        );
    }

    // 5. Execute the mapped fabric on random vectors and compare against
    //    the reference interpreter.
    verify_mapping_vectors(&arch, &mrrg, &dfg, mapping, 10)?;
    println!("fabric output matches the DFG interpreter on 10 random vectors");
    Ok(())
}
