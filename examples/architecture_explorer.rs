//! Architecture exploration — the workflow the paper's introduction
//! motivates: an architect tunes flexibility (interconnect richness,
//! multiplier provisioning, context count) "down to the limit of
//! mappability" for a benchmark set, using the exact mapper's verdicts.
//!
//! This example sweeps array sizes and families for three kernels and
//! prints the cheapest configuration that maps all of them.
//!
//! Run with: `cargo run --release --example architecture_explorer`

use cgra::arch::families::{grid, FuMix, GridParams, Interconnect};
use cgra::mapper::{IlpMapper, MapperOptions};
use cgra::mrrg::build_mrrg;
use std::time::Duration;

fn main() {
    let kernels = ["accum", "2x2-p", "exp_4"];
    let mut best: Option<(String, usize)> = None;

    println!(
        "{:<24} {:>8} {:>8} {:>10}  verdicts",
        "configuration", "muxes", "mapped", "mux-bits"
    );
    for (rows, cols) in [(2usize, 2usize), (3, 3), (4, 4)] {
        for mix in [FuMix::Heterogeneous, FuMix::Homogeneous] {
            for ic in [Interconnect::Orthogonal, Interconnect::Diagonal] {
                for contexts in [1u32, 2] {
                    let arch = grid(GridParams {
                        rows,
                        cols,
                        fu_mix: mix,
                        interconnect: ic,
                        io_pads: true,
                        memory_ports: true,
                        toroidal: false,
                        alu_latency: 0,
                        bypass_channel: false,
                    });
                    let mrrg = build_mrrg(&arch, contexts);
                    let mapper = IlpMapper::new(MapperOptions {
                        time_limit: Some(Duration::from_secs(20)),
                        warm_start: true,
                        ..MapperOptions::default()
                    });
                    let mut verdicts = Vec::new();
                    let mut mapped = 0;
                    for k in kernels {
                        let dfg = (cgra::dfg::benchmarks::by_name(k)
                            .expect("known benchmark")
                            .build)();
                        let r = mapper.map(&dfg, &mrrg);
                        if r.outcome.is_mapped() {
                            mapped += 1;
                        }
                        verdicts.push(format!("{k}:{}", r.outcome.table_symbol()));
                    }
                    // A crude area proxy: total mux input count across the
                    // array, times contexts (configuration memory).
                    let mux_bits: usize = arch
                        .components()
                        .iter()
                        .filter_map(|c| match c.kind {
                            cgra::arch::ComponentKind::Mux { inputs } => {
                                Some(inputs as usize * contexts as usize)
                            }
                            _ => None,
                        })
                        .sum();
                    let label = format!("{}@{}ctx", arch.name(), contexts);
                    println!(
                        "{:<24} {:>8} {:>8} {:>10}  {}",
                        label,
                        arch.kind_counts().1,
                        mapped,
                        mux_bits,
                        verdicts.join(" ")
                    );
                    if mapped == kernels.len()
                        && best.as_ref().map(|(_, b)| mux_bits < *b).unwrap_or(true)
                    {
                        best = Some((label, mux_bits));
                    }
                }
            }
        }
    }
    match best {
        Some((label, bits)) => {
            println!("\ncheapest fully-mappable configuration: {label} ({bits} mux config bits)")
        }
        None => println!("\nno configuration mapped all kernels"),
    }
}
