//! Exact versus heuristic — the paper's Fig 8 story on one benchmark:
//! run the simulated-annealing mapper and the ILP mapper on progressively
//! harder cells and watch the heuristic start failing where the exact
//! mapper still decides.
//!
//! Run with: `cargo run --release --example mapper_shootout [benchmark] [--threads N]`
//!
//! `--threads N` (or `BILP_THREADS`) gives the ILP mapper a portfolio of
//! N racing engines; the annealing baseline stays single-threaded.

use cgra::arch::families::paper_configs;
use cgra::mapper::{AnnealParams, AnnealingMapper, IlpMapper, MapperOptions};
use cgra::mrrg::build_mrrg;
use std::time::Duration;

fn main() {
    let mut name = String::from("exp_5");
    let mut threads = bilp::threads_from_env().unwrap_or(1);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                threads = match args.next().map(|v| v.parse()) {
                    Some(Ok(n)) => n,
                    _ => fail("--threads needs a number"),
                };
            }
            other => name = other.to_owned(),
        }
    }
    let Some(entry) = cgra::dfg::benchmarks::by_name(&name) else {
        let known: Vec<&str> = cgra::dfg::benchmarks::all()
            .iter()
            .map(|e| e.name)
            .collect();
        fail(&format!(
            "unknown benchmark `{name}`; known: {}",
            known.join(", ")
        ));
    };
    let dfg = (entry.build)();
    let s = dfg.stats();
    println!(
        "benchmark {name}: {} I/Os, {} operations, {} multiplies\n",
        s.ios, s.operations, s.multiplies
    );

    let budget = Duration::from_secs(30);
    println!(
        "{:<16} {:>4} {:>14} {:>14}",
        "architecture", "II", "annealing", "ILP"
    );
    for config in paper_configs() {
        let mrrg = build_mrrg(&config.arch, config.contexts);
        let options = MapperOptions {
            time_limit: Some(budget),
            ..MapperOptions::default()
        };
        let sa = AnnealingMapper::new(options, AnnealParams::default()).map(&dfg, &mrrg);
        let ilp = IlpMapper::new(MapperOptions {
            warm_start: true,
            threads,
            ..options
        })
        .map(&dfg, &mrrg);
        println!(
            "{:<16} {:>4} {:>8} {:>5.1}s {:>8} {:>5.1}s",
            config.label,
            config.contexts,
            sa.outcome.table_symbol(),
            sa.elapsed.as_secs_f64(),
            ilp.outcome.table_symbol(),
            ilp.elapsed.as_secs_f64(),
        );
    }
    println!("\nlegend: 1 = mapped, 0 = proven infeasible (ILP only), T = gave up/timed out");
}

/// Prints a usage error and exits — an invocation typo should read as a
/// message, not a panic backtrace.
fn fail(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!("usage: cargo run --release --example mapper_shootout -- [benchmark] [--threads N]");
    std::process::exit(2);
}
