//! Minimum-II search: "what is the best throughput this architecture can
//! give my kernel?" — answered exactly, II by II, with the DRESC-style
//! outer loop around the exact mapper.
//!
//! Run with: `cargo run --release --example min_ii_search [benchmark] [--threads N]`
//!
//! `--threads N` (or the `BILP_THREADS` environment variable) races N
//! diversified solver engines per II attempt; verdicts are identical to
//! the sequential run, usually sooner.

use cgra::arch::families::{grid, FuMix, GridParams, Interconnect};
use cgra::mapper::{map_min_ii, MapperOptions};
use std::time::Duration;

fn main() {
    let mut name = String::from("cos_4");
    let mut threads = bilp::threads_from_env().unwrap_or(1);
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--threads" => {
                threads = match args.next().map(|v| v.parse()) {
                    Some(Ok(n)) => n,
                    _ => fail("--threads needs a number"),
                };
            }
            other => name = other.to_owned(),
        }
    }
    let Some(entry) = cgra::dfg::benchmarks::by_name(&name) else {
        let known: Vec<&str> = cgra::dfg::benchmarks::all()
            .iter()
            .map(|e| e.name)
            .collect();
        fail(&format!(
            "unknown benchmark `{name}`; known: {}",
            known.join(", ")
        ));
    };
    let dfg = (entry.build)();
    println!("kernel {name}: {}\n", dfg);
    if threads != 1 {
        println!("(portfolio solving with {threads} threads; 0 = all cores)\n");
    }

    let options = MapperOptions {
        time_limit: Some(Duration::from_secs(60)),
        warm_start: true,
        threads,
        ..MapperOptions::default()
    };
    for (label, mix, ic) in [
        (
            "hetero-orth",
            FuMix::Heterogeneous,
            Interconnect::Orthogonal,
        ),
        ("homo-diag", FuMix::Homogeneous, Interconnect::Diagonal),
    ] {
        let arch = grid(GridParams::paper(mix, ic));
        let report = map_min_ii(&dfg, &arch, options, 4);
        print!("{label:<14}");
        for attempt in &report.attempts {
            print!(
                "  II={}: {} [{}]",
                attempt.ii,
                attempt.report.outcome.table_symbol(),
                attempt.provenance.label()
            );
        }
        match report.min_ii {
            Some(ii) => println!("  => best throughput 1/{ii}"),
            None => println!("  => not mappable up to II=4"),
        }
    }
    println!(
        "\n(an exact verdict at each II: a 0 means that throughput is *provably*\n\
         unachievable, which no heuristic mapper can tell you)"
    );
}

/// Prints a usage error and exits — an invocation typo should read as a
/// message, not a panic backtrace.
fn fail(message: &str) -> ! {
    eprintln!("error: {message}");
    eprintln!("usage: cargo run --release --example min_ii_search -- [benchmark] [--threads N]");
    std::process::exit(2);
}
