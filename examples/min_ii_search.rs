//! Minimum-II search: "what is the best throughput this architecture can
//! give my kernel?" — answered exactly, II by II, with the DRESC-style
//! outer loop around the exact mapper.
//!
//! Run with: `cargo run --release --example min_ii_search [benchmark]`

use cgra::arch::families::{grid, FuMix, GridParams, Interconnect};
use cgra::mapper::{map_min_ii, MapperOptions};
use std::time::Duration;

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "cos_4".into());
    let entry = cgra::dfg::benchmarks::by_name(&name)
        .unwrap_or_else(|| panic!("unknown benchmark `{name}`"));
    let dfg = (entry.build)();
    println!("kernel {name}: {}\n", dfg);

    let options = MapperOptions {
        time_limit: Some(Duration::from_secs(60)),
        warm_start: true,
        ..MapperOptions::default()
    };
    for (label, mix, ic) in [
        ("hetero-orth", FuMix::Heterogeneous, Interconnect::Orthogonal),
        ("homo-diag", FuMix::Homogeneous, Interconnect::Diagonal),
    ] {
        let arch = grid(GridParams::paper(mix, ic));
        let report = map_min_ii(&dfg, &arch, options, 4);
        print!("{label:<14}");
        for (ii, attempt) in &report.attempts {
            print!("  II={ii}: {}", attempt.outcome.table_symbol());
        }
        match report.min_ii {
            Some(ii) => println!("  => best throughput 1/{ii}"),
            None => println!("  => not mappable up to II=4"),
        }
    }
    println!(
        "\n(an exact verdict at each II: a 0 means that throughput is *provably*\n\
         unachievable, which no heuristic mapper can tell you)"
    );
}
