//! The architecture-*agnostic* part of the paper, demonstrated: describe
//! a CGRA that the framework has never seen — a ring of
//! heterogeneous processing elements written in the textual architecture
//! description language — and map a kernel onto it unchanged.
//!
//! Run with: `cargo run --release --example custom_architecture`

use cgra::arch::text;
use cgra::dfg::{Dfg, OpKind};
use cgra::mapper::{IlpMapper, MapperOptions};
use cgra::mrrg::build_mrrg;
use cgra::sim::verify_mapping_vectors;
use std::fmt::Write as _;

/// Builds a ring of `n` PEs in the textual description language. Each PE
/// has an ALU (even PEs get a multiplier), a register with an input mux,
/// and operand muxes selecting between the two ring neighbours, the PE's
/// own pad and its register.
fn ring_description(n: usize) -> String {
    let mut s = String::from("arch ring\n");
    for i in 0..n {
        let ops = if i % 2 == 0 {
            "add,sub,mul,shl,shr,and,or,xor,const"
        } else {
            "add,sub,shl,shr,and,or,xor,const"
        };
        let _ = writeln!(s, "fu pe{i}.alu ops={ops} latency=0 ii=1");
        let _ = writeln!(s, "fu pe{i}.pad ops=input,output latency=0 ii=1");
        let _ = writeln!(s, "reg pe{i}.reg");
        // Operand muxes: left neighbour, right neighbour, pad, register.
        let _ = writeln!(s, "mux pe{i}.opa inputs=4");
        let _ = writeln!(s, "mux pe{i}.opb inputs=4");
        // Register mux: ALU, hold, left, right, pad.
        let _ = writeln!(s, "mux pe{i}.regm inputs=5");
        // Output mux: ALU, register, pad, left pass, right pass.
        let _ = writeln!(s, "mux pe{i}.out inputs=5");
    }
    for i in 0..n {
        let left = (i + n - 1) % n;
        let right = (i + 1) % n;
        for m in ["opa", "opb"] {
            let _ = writeln!(s, "connect pe{left}.out.out -> pe{i}.{m}.in0");
            let _ = writeln!(s, "connect pe{right}.out.out -> pe{i}.{m}.in1");
            let _ = writeln!(s, "connect pe{i}.pad.out -> pe{i}.{m}.in2");
            let _ = writeln!(s, "connect pe{i}.reg.out -> pe{i}.{m}.in3");
        }
        let _ = writeln!(s, "connect pe{i}.alu.out -> pe{i}.regm.in0");
        let _ = writeln!(s, "connect pe{i}.reg.out -> pe{i}.regm.in1");
        let _ = writeln!(s, "connect pe{left}.out.out -> pe{i}.regm.in2");
        let _ = writeln!(s, "connect pe{right}.out.out -> pe{i}.regm.in3");
        let _ = writeln!(s, "connect pe{i}.pad.out -> pe{i}.regm.in4");
        let _ = writeln!(s, "connect pe{i}.regm.out -> pe{i}.reg.in0");
        let _ = writeln!(s, "connect pe{i}.alu.out -> pe{i}.out.in0");
        let _ = writeln!(s, "connect pe{i}.reg.out -> pe{i}.out.in1");
        let _ = writeln!(s, "connect pe{i}.pad.out -> pe{i}.out.in2");
        let _ = writeln!(s, "connect pe{left}.out.out -> pe{i}.out.in3");
        let _ = writeln!(s, "connect pe{right}.out.out -> pe{i}.out.in4");
        let _ = writeln!(s, "connect pe{i}.opa.out -> pe{i}.alu.in0");
        let _ = writeln!(s, "connect pe{i}.opb.out -> pe{i}.alu.in1");
        let _ = writeln!(s, "connect pe{i}.out.out -> pe{i}.pad.in0");
    }
    s
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let description = ring_description(6);
    let arch = text::parse(&description)?;
    arch.validate()?;
    println!("parsed custom architecture: {arch}");

    // Kernel: r = (a - b) * (a + b)
    let mut dfg = Dfg::new("difference_of_squares");
    let a = dfg.add_op("a", OpKind::Input)?;
    let b = dfg.add_op("b", OpKind::Input)?;
    let d = dfg.add_op("d", OpKind::Sub)?;
    let s = dfg.add_op("s", OpKind::Add)?;
    let m = dfg.add_op("m", OpKind::Mul)?;
    let o = dfg.add_op("r", OpKind::Output)?;
    dfg.connect(a, d, 0)?;
    dfg.connect(b, d, 1)?;
    dfg.connect(a, s, 0)?;
    dfg.connect(b, s, 1)?;
    dfg.connect(d, m, 0)?;
    dfg.connect(s, m, 1)?;
    dfg.connect(m, o, 0)?;
    dfg.validate()?;

    for contexts in [1u32, 2] {
        let mrrg = build_mrrg(&arch, contexts);
        let report = IlpMapper::new(MapperOptions::default()).map(&dfg, &mrrg);
        println!(
            "II={contexts}: {} in {:.2?}",
            report.outcome, report.elapsed
        );
        if let Some(mapping) = report.outcome.mapping() {
            verify_mapping_vectors(&arch, &mrrg, &dfg, mapping, 5)?;
            println!("  verified on the simulated ring fabric");
            for (q, p) in &mapping.placement {
                println!(
                    "  {:<3} -> {}",
                    dfg.ops()[q.index()].name,
                    mrrg.nodes()[p.index()].name
                );
            }
            break;
        }
    }
    Ok(())
}
